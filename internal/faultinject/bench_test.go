package faultinject

import "testing"

// TestDisabledZeroAlloc pins the zero-cost contract of the disabled path:
// the hook-site pattern (atomic load + nil branch) and FireErr must not
// allocate — the same bar as the nil *obs.Observer pattern.
func TestDisabledZeroAlloc(t *testing.T) {
	Deactivate()
	allocs := testing.AllocsPerRun(1000, func() {
		if inj := Active(); inj != nil {
			t.Fatal("unexpectedly active")
		}
		if err := FireErr(CGResidual, ""); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled hook allocated %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledHook measures the per-call-site cost of a disabled
// injection hook (one atomic pointer load and a branch).
func BenchmarkDisabledHook(b *testing.B) {
	Deactivate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if inj := Active(); inj != nil {
			b.Fatal("active")
		}
	}
}

// BenchmarkEnabledMiss measures a hook firing check against an armed
// injector whose rules do not match — the worst case an injection test pays
// on unrelated hot paths.
func BenchmarkEnabledMiss(b *testing.B) {
	Activate(New().Add(Rule{Point: QPSolve}))
	defer Deactivate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if inj := Active(); inj != nil {
			if err := inj.Fire(CGResidual, ""); err != nil {
				b.Fatal(err)
			}
		}
	}
}
