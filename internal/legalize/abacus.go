package legalize

import (
	"context"
	"fmt"
	"math"
	"sort"

	"complx/internal/geom"
	"complx/internal/netlist"
)

// LegalizeAbacus is an Abacus-style legalizer (Spindler et al., DATE 2008):
// cells are processed in x order; each cell is tried in nearby rows and
// *optimally* placed within the row by the classic cluster-collapse dynamic
// programming, which minimizes total squared displacement of the row's
// cells instead of greedily packing like Tetris. It typically yields lower
// displacement at slightly higher runtime.
//
// Macros are packed first exactly as in Legalize; fixed cells split rows
// into independent segments.
func LegalizeAbacus(nl *netlist.Netlist, opt Options) error {
	return LegalizeAbacusCtx(context.Background(), nl, opt)
}

// LegalizeAbacusCtx is LegalizeAbacus with cooperative cancellation, on the
// same contract as LegalizeCtx: polled per macro and every ctxCheckStride
// cells, partial results keep their positions, the error wraps ctx.Err().
func LegalizeAbacusCtx(ctx context.Context, nl *netlist.Netlist, opt Options) error {
	if len(nl.Rows) == 0 {
		return fmt.Errorf("legalize: netlist %q has no rows", nl.Name)
	}
	defer opt.observe("legalize_abacus", nl)()
	obstacles := fixedObstacles(nl)
	macros := movableMacros(nl)
	if err := packMacros(ctx, nl, macros, obstacles); err != nil {
		return err
	}
	for _, m := range macros {
		obstacles = append(obstacles, nl.Cells[m].Rect())
	}
	return abacusPlace(ctx, nl, obstacles, opt)
}

// segment is an obstacle-free stretch of one row holding an ordered list of
// placed cells.
type segment struct {
	rowY   float64
	site   float64
	xMin   float64
	lo, hi float64
	cells  []int     // in placement order
	pos    []float64 // committed x per cell
	width  float64   // summed widths
}

// abacusRow is one row's obstacle-free segments.
type abacusRow struct {
	y    float64
	segs []*segment
}

func abacusPlace(ctx context.Context, nl *netlist.Netlist, obstacles []geom.Rect, opt Options) error {
	// Build segments per row.
	rows := make([]*abacusRow, len(nl.Rows))
	for ri, r := range nl.Rows {
		rs := &rowState{row: r, free: []geom.Interval{{Lo: r.XMin, Hi: r.XMax}}}
		for _, o := range obstacles {
			if o.YMin < r.Y+r.Height && o.YMax > r.Y {
				rs.carve(o.XMin, o.XMax)
			}
		}
		ar := &abacusRow{y: r.Y}
		site := r.SiteWidth
		if site <= 0 {
			site = 1
		}
		for _, iv := range rs.free {
			ar.segs = append(ar.segs, &segment{
				rowY: r.Y, site: site, xMin: r.XMin, lo: iv.Lo, hi: iv.Hi,
			})
		}
		rows[ri] = ar
	}
	order := make([]int, 0, len(rows))
	for i := range rows {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool { return rows[order[a]].y < rows[order[b]].y })

	var cells []int
	for _, i := range nl.Movables() {
		if nl.Cells[i].Kind == netlist.Std {
			cells = append(cells, i)
		}
	}
	sort.Slice(cells, func(a, b int) bool {
		ca, cb := &nl.Cells[cells[a]], &nl.Cells[cells[b]]
		if (ca.Region >= 0) != (cb.Region >= 0) {
			return ca.Region >= 0
		}
		return ca.X < cb.X
	})

	for n, ci := range cells {
		if n%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				// Write back what is already committed so the partial result
				// is at least row-aligned before returning.
				for _, ar := range rows {
					for _, seg := range ar.segs {
						for k, cj := range seg.cells {
							nl.Cells[cj].X = seg.pos[k]
							nl.Cells[cj].Y = seg.rowY
						}
					}
				}
				return fmt.Errorf("legalize: abacus cancelled after %d of %d cells: %w", n, len(cells), err)
			}
		}
		c := &nl.Cells[ci]
		var allowX, allowY *geom.Interval
		if c.Region >= 0 {
			rr := nl.Regions[c.Region].Rect
			allowX = &geom.Interval{Lo: rr.XMin, Hi: rr.XMax}
			allowY = &geom.Interval{Lo: rr.YMin, Hi: rr.YMax}
		}
	retry:
		bestCost := math.Inf(1)
		var bestSeg *segment
		// Search rows outward from the nearest.
		near := sort.Search(len(order), func(k int) bool { return rows[order[k]].y >= c.Y })
		for radius := 0; ; radius++ {
			lo, hi := near-radius, near+radius
			cand := []int{}
			if lo >= 0 && lo < len(order) {
				cand = append(cand, order[lo])
			}
			if hi != lo && hi >= 0 && hi < len(order) {
				cand = append(cand, order[hi])
			}
			if lo < 0 && hi >= len(order) {
				break
			}
			anyCloser := false
			for _, ri := range cand {
				ar := rows[ri]
				dy := math.Abs(ar.y - c.Y)
				if dy < bestCost {
					anyCloser = true
				}
				if dy >= bestCost {
					continue
				}
				if allowY != nil && (ar.y < allowY.Lo-1e-9 || ar.y+c.H > allowY.Hi+1e-9) {
					continue
				}
				for _, seg := range ar.segs {
					segLo, segHi := seg.lo, seg.hi
					if allowX != nil {
						segLo = math.Max(segLo, allowX.Lo)
						segHi = math.Min(segHi, allowX.Hi)
					}
					if segHi-segLo < seg.width+c.W-1e-9 {
						continue // segment cannot absorb the cell
					}
					if cost, ok := seg.trialCost(nl, ci, dy, segLo, segHi); ok && cost < bestCost {
						bestCost = cost
						bestSeg = seg
					}
				}
			}
			if bestSeg != nil && !anyCloser && radius > 0 {
				break
			}
		}
		if bestSeg == nil {
			if allowX != nil {
				allowX, allowY = nil, nil
				goto retry
			}
			return fmt.Errorf("legalize: abacus found no space for cell %q", c.Name)
		}
		segLo, segHi := bestSeg.lo, bestSeg.hi
		if allowX != nil {
			segLo = math.Max(segLo, allowX.Lo)
			segHi = math.Min(segHi, allowX.Hi)
		}
		bestSeg.commit(nl, ci, segLo, segHi)
	}
	// Write back committed positions.
	for _, ar := range rows {
		for _, seg := range ar.segs {
			for k, ci := range seg.cells {
				nl.Cells[ci].X = seg.pos[k]
				nl.Cells[ci].Y = seg.rowY
			}
		}
	}
	return nil
}

// collapse runs the Abacus cluster-collapse DP over the segment's cells
// (assumed appended in x order) and returns the optimal positions within
// [lo, hi], site-aligned.
func (s *segment) collapse(nl *netlist.Netlist, lo, hi float64) []float64 {
	type clusterT struct {
		x     float64 // optimal start
		w     float64 // total width
		q     float64 // Σ e_i (x_i' − offset) accumulation
		e     float64 // total weight
		first int
	}
	var clusters []clusterT
	for idx, ci := range s.cells {
		c := &nl.Cells[ci]
		want := c.X // desired lower-left x
		clusters = append(clusters, clusterT{x: want, w: c.W, q: want, e: 1, first: idx})
		// Clamp, then merge while the (clamped) cluster overlaps its
		// predecessor; clamping can create new overlaps, so iterate.
		for {
			last := &clusters[len(clusters)-1]
			last.x = geom.Clamp(last.x, lo, hi-last.w)
			if len(clusters) < 2 {
				break
			}
			prev := clusters[len(clusters)-2]
			if last.x >= prev.x+prev.w-1e-12 {
				break
			}
			cur := clusters[len(clusters)-1]
			merged := clusterT{
				e:     prev.e + cur.e,
				q:     prev.q + cur.q - cur.e*prev.w,
				w:     prev.w + cur.w,
				first: prev.first,
			}
			merged.x = merged.q / merged.e
			clusters = clusters[:len(clusters)-2]
			clusters = append(clusters, merged)
		}
	}
	// Emit positions left to right with site alignment; alignment may push
	// a cluster onto its neighbor, so enforce sequential non-overlap.
	out := make([]float64, len(s.cells))
	prevEnd := math.Inf(-1)
	for k := range clusters {
		cl := clusters[k]
		x := s.xMin + math.Round((cl.x-s.xMin)/s.site)*s.site
		for x < lo-1e-9 {
			x += s.site
		}
		if x < prevEnd-1e-9 {
			// Next site position at or after prevEnd.
			x = s.xMin + math.Ceil((prevEnd-s.xMin-1e-9)/s.site)*s.site
		}
		for x+cl.w > hi+1e-9 {
			x -= s.site
		}
		// If pushed back onto the neighbor the segment is (near) full; the
		// caller's bound check in trialCost rejects genuine overflows.
		idx := cl.first
		end := len(s.cells)
		if k+1 < len(clusters) {
			end = clusters[k+1].first
		}
		for cur := x; idx < end; idx++ {
			out[idx] = cur
			cur += nl.Cells[s.cells[idx]].W
		}
		prevEnd = x + cl.w
	}
	return out
}

// trialCost evaluates inserting cell ci (cost = summed displacement change
// of the segment, plus the cell's own displacement including dy).
func (s *segment) trialCost(nl *netlist.Netlist, ci int, dy, lo, hi float64) (float64, bool) {
	s.insert(nl, ci)
	pos := s.collapse(nl, lo, hi)
	cost := dy
	ok := true
	prevEnd := math.Inf(-1)
	for k, cj := range s.cells {
		if pos[k] < lo-1e-6 || pos[k]+nl.Cells[cj].W > hi+1e-6 || pos[k] < prevEnd-1e-6 {
			ok = false
			break
		}
		prevEnd = pos[k] + nl.Cells[cj].W
		cost += math.Abs(pos[k] - nl.Cells[cj].X)
	}
	s.remove(ci)
	return cost, ok
}

// commit permanently inserts the cell and re-collapses the segment.
func (s *segment) commit(nl *netlist.Netlist, ci int, lo, hi float64) {
	s.insert(nl, ci)
	s.width += nl.Cells[ci].W
	s.pos = s.collapse(nl, lo, hi)
}

// insert adds ci keeping x order.
func (s *segment) insert(nl *netlist.Netlist, ci int) {
	x := nl.Cells[ci].X
	k := sort.Search(len(s.cells), func(a int) bool { return nl.Cells[s.cells[a]].X >= x })
	s.cells = append(s.cells, 0)
	copy(s.cells[k+1:], s.cells[k:])
	s.cells[k] = ci
}

func (s *segment) remove(ci int) {
	for k, cj := range s.cells {
		if cj == ci {
			s.cells = append(s.cells[:k], s.cells[k+1:]...)
			return
		}
	}
}
