package legalize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"complx/internal/geom"
	"complx/internal/netlist"
)

// denseDesign builds numCells unit cells randomly placed in a 50x50 core
// with 50 rows, plus an optional fixed obstacle and macro.
func denseDesign(t *testing.T, numCells int, withObstacle, withMacro bool, seed int64) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder("lg")
	b.SetCore(geom.Rect{XMax: 50, YMax: 50})
	var pins []netlist.PinSpec
	for i := 0; i < numCells; i++ {
		id := b.AddCell(nm(i), 1+float64(rng.Intn(3)), 1)
		if i < 8 {
			pins = append(pins, netlist.PinSpec{Cell: id})
		}
	}
	if withObstacle {
		b.AddFixed("obs", 10, 10, 15, 15)
	}
	if withMacro {
		b.AddMacro("mac", 6, 6)
		pins = append(pins, netlist.PinSpec{Cell: b.CellID("mac")})
	}
	b.AddNet("n", 1, pins)
	b.AddUniformRows(50, 1, 1)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range nl.Movables() {
		nl.Cells[i].SetCenter(geom.Point{X: 5 + 40*rng.Float64(), Y: 5 + 40*rng.Float64()})
	}
	return nl
}

func nm(i int) string {
	return "c" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}

func TestLegalizeProducesLegalPlacement(t *testing.T) {
	nl := denseDesign(t, 400, false, false, 1)
	if err := Legalize(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	if v := Check(nl, 1e-6); len(v) != 0 {
		t.Fatalf("violations: %+v", v[:min(len(v), 5)])
	}
}

func TestLegalizeAvoidsObstacle(t *testing.T) {
	nl := denseDesign(t, 300, true, false, 2)
	if err := Legalize(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	if v := Check(nl, 1e-6); len(v) != 0 {
		t.Fatalf("violations: %+v", v[:min(len(v), 5)])
	}
	obs := geom.Rect{XMin: 10, YMin: 10, XMax: 25, YMax: 25}
	for _, i := range nl.Movables() {
		r := nl.Cells[i].Rect()
		ov := r.Intersect(obs)
		if ov.Width() > 1e-9 && ov.Height() > 1e-9 {
			t.Fatalf("cell %q overlaps obstacle", nl.Cells[i].Name)
		}
	}
}

func TestLegalizeWithMacro(t *testing.T) {
	nl := denseDesign(t, 200, true, true, 3)
	if err := Legalize(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	if v := Check(nl, 1e-6); len(v) != 0 {
		t.Fatalf("violations: %+v", v[:min(len(v), 5)])
	}
	mac := nl.Cells[nl.CellByName("mac")]
	if !nl.Core.ContainsRect(mac.Rect()) {
		t.Errorf("macro outside core: %v", mac.Rect())
	}
}

func TestLegalizeSmallDisplacement(t *testing.T) {
	// Cells already on a near-legal grid should barely move.
	b := netlist.NewBuilder("easy")
	b.SetCore(geom.Rect{XMax: 20, YMax: 20})
	var pin []netlist.PinSpec
	for i := 0; i < 10; i++ {
		id := b.AddCell(nm(i), 2, 1)
		pin = append(pin, netlist.PinSpec{Cell: id})
	}
	b.AddNet("n", 1, pin)
	b.AddUniformRows(20, 1, 1)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range nl.Movables() {
		nl.Cells[i].X = float64(2*k) + 0.1
		nl.Cells[i].Y = float64(k) + 0.05
	}
	snap := nl.SnapshotPositions()
	if err := Legalize(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	d := TotalDisplacement(nl, snap)
	if d > 5 {
		t.Errorf("displacement = %v, want small", d)
	}
	if v := Check(nl, 1e-6); len(v) != 0 {
		t.Fatalf("violations: %+v", v)
	}
}

func TestLegalizeNoRows(t *testing.T) {
	b := netlist.NewBuilder("norows")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}})
	nl, _ := b.Build()
	if err := Legalize(nl, Options{}); err == nil {
		t.Error("expected error without rows")
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	b := netlist.NewBuilder("bad")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c1 := b.AddCell("c1", 2, 1)
	c2 := b.AddCell("c2", 2, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c1}, {Cell: c2}})
	b.AddUniformRows(10, 1, 1)
	nl, _ := b.Build()
	// Overlapping, off-row, off-site placement.
	nl.Cells[c1].X, nl.Cells[c1].Y = 1.3, 0.5
	nl.Cells[c2].X, nl.Cells[c2].Y = 2.3, 0.0
	v := Check(nl, 1e-6)
	kinds := map[string]bool{}
	for _, vi := range v {
		kinds[vi.Kind] = true
	}
	if !kinds["row"] || !kinds["site"] || !kinds["overlap"] {
		t.Errorf("kinds = %v, want row+site+overlap", kinds)
	}
}

func TestCheckDetectsFixedOverlap(t *testing.T) {
	b := netlist.NewBuilder("fo")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 2, 1)
	f := b.AddFixed("f", 0, 0, 3, 3)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}, {Cell: f}})
	b.AddUniformRows(10, 1, 1)
	nl, _ := b.Build()
	nl.Cells[c].X, nl.Cells[c].Y = 1, 1
	v := Check(nl, 1e-6)
	found := false
	for _, vi := range v {
		if vi.Kind == "fixed-overlap" {
			found = true
		}
	}
	if !found {
		t.Errorf("fixed overlap not detected: %+v", v)
	}
}

func TestHighUtilizationStillLegal(t *testing.T) {
	// 90% utilization: 450 unit cells into a 50-row, width-10 core would be
	// too tight; use 20x20 core with 360 cells of width 1.
	b := netlist.NewBuilder("tight")
	b.SetCore(geom.Rect{XMax: 20, YMax: 20})
	var pins []netlist.PinSpec
	for i := 0; i < 360; i++ {
		id := b.AddCell(nm(i), 1, 1)
		if i < 5 {
			pins = append(pins, netlist.PinSpec{Cell: id})
		}
	}
	b.AddNet("n", 1, pins)
	b.AddUniformRows(20, 1, 1)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for _, i := range nl.Movables() {
		nl.Cells[i].SetCenter(geom.Point{X: 10 + 3*rng.NormFloat64(), Y: 10 + 3*rng.NormFloat64()})
	}
	if err := Legalize(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	if v := Check(nl, 1e-6); len(v) != 0 {
		t.Fatalf("violations: %+v", v[:min(len(v), 5)])
	}
}

func TestRingOffsets(t *testing.T) {
	if len(ringOffsets(0)) != 1 {
		t.Error("ring 0 should have 1 offset")
	}
	if len(ringOffsets(2)) != 16 {
		t.Errorf("ring 2 has %d offsets, want 16", len(ringOffsets(2)))
	}
	seen := map[[2]int]bool{}
	for _, d := range ringOffsets(3) {
		if seen[d] {
			t.Errorf("duplicate offset %v", d)
		}
		seen[d] = true
		if max(abs(d[0]), abs(d[1])) != 3 {
			t.Errorf("offset %v not on ring 3", d)
		}
	}
}

func TestCarve(t *testing.T) {
	rs := &rowState{free: []geom.Interval{{Lo: 0, Hi: 10}}}
	rs.carve(3, 5)
	if len(rs.free) != 2 || rs.free[0] != (geom.Interval{Lo: 0, Hi: 3}) || rs.free[1] != (geom.Interval{Lo: 5, Hi: 10}) {
		t.Errorf("carve = %v", rs.free)
	}
	rs.carve(-1, 1)
	if rs.free[0] != (geom.Interval{Lo: 1, Hi: 3}) {
		t.Errorf("carve edge = %v", rs.free)
	}
	rs.carve(0, 20)
	if len(rs.free) != 0 {
		t.Errorf("carve all = %v", rs.free)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestLegalizeRandomDesignsProperty: any feasible random design legalizes to
// a violation-free placement.
func TestLegalizeRandomDesignsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(300)
		nl := denseDesignSeeded(t, n, rng.Intn(2) == 0, rng.Intn(2) == 0, seed)
		if err := Legalize(nl, Options{}); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return len(Check(nl, 1e-6)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// denseDesignSeeded mirrors denseDesign but is usable from quick.Check.
func denseDesignSeeded(t *testing.T, numCells int, withObstacle, withMacro bool, seed int64) *netlist.Netlist {
	return denseDesign(t, numCells, withObstacle, withMacro, seed)
}
