package legalize

import (
	"testing"

	"complx/internal/geom"
	"complx/internal/netlist"
)

func TestAbacusProducesLegalPlacement(t *testing.T) {
	nl := denseDesign(t, 400, false, false, 11)
	if err := LegalizeAbacus(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	if v := Check(nl, 1e-6); len(v) != 0 {
		t.Fatalf("violations: %+v", v[:min(len(v), 5)])
	}
}

func TestAbacusWithObstacleAndMacro(t *testing.T) {
	nl := denseDesign(t, 250, true, true, 12)
	if err := LegalizeAbacus(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	if v := Check(nl, 1e-6); len(v) != 0 {
		t.Fatalf("violations: %+v", v[:min(len(v), 5)])
	}
}

// TestAbacusBeatsOrMatchesTetrisDisplacement: on a spread-out design the
// optimal within-row DP should not displace cells more than greedy Tetris.
func TestAbacusBeatsOrMatchesTetrisDisplacement(t *testing.T) {
	mk := func() *netlist.Netlist { return denseDesign(t, 500, false, false, 13) }

	tetris := mk()
	snapT := tetris.SnapshotPositions()
	if err := Legalize(tetris, Options{}); err != nil {
		t.Fatal(err)
	}
	dispT := TotalDisplacement(tetris, snapT)

	abacus := mk()
	snapA := abacus.SnapshotPositions()
	if err := LegalizeAbacus(abacus, Options{}); err != nil {
		t.Fatal(err)
	}
	dispA := TotalDisplacement(abacus, snapA)

	t.Logf("displacement: tetris=%.1f abacus=%.1f", dispT, dispA)
	if dispA > 1.3*dispT {
		t.Errorf("abacus displacement %v much worse than tetris %v", dispA, dispT)
	}
}

func TestAbacusRegionConstraint(t *testing.T) {
	b := netlist.NewBuilder("ar")
	b.SetCore(geom.Rect{XMax: 30, YMax: 30})
	var pins []netlist.PinSpec
	for i := 0; i < 60; i++ {
		id := b.AddCell(nm(i), 1, 1)
		if i < 4 {
			pins = append(pins, netlist.PinSpec{Cell: id})
		}
	}
	r := b.AddRegion("grp", geom.Rect{XMin: 20, YMin: 20, XMax: 30, YMax: 30})
	for i := 0; i < 10; i++ {
		b.ConstrainCell(b.CellID(nm(i)), r)
	}
	b.AddNet("n", 1, pins)
	b.AddUniformRows(30, 1, 1)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range nl.Movables() {
		nl.Cells[i].SetCenter(geom.Point{X: 5 + float64(k%20), Y: 5 + float64(k/20)})
	}
	if err := LegalizeAbacus(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	rr := geom.Rect{XMin: 20, YMin: 20, XMax: 30, YMax: 30}
	for i := 0; i < 10; i++ {
		c := nl.Cells[nl.CellByName(nm(i))]
		if !rr.Expand(1e-6).ContainsRect(c.Rect()) {
			t.Errorf("cell %s outside region: %v", c.Name, c.Rect())
		}
	}
	if v := Check(nl, 1e-6); len(v) != 0 {
		t.Fatalf("violations: %+v", v[:min(len(v), 5)])
	}
}

func TestAbacusNoRows(t *testing.T) {
	b := netlist.NewBuilder("norows")
	b.SetCore(geom.Rect{XMax: 10, YMax: 10})
	c := b.AddCell("c", 1, 1)
	b.AddNet("n", 1, []netlist.PinSpec{{Cell: c}})
	nl, _ := b.Build()
	if err := LegalizeAbacus(nl, Options{}); err == nil {
		t.Error("expected error without rows")
	}
}

func TestAbacusHighUtilization(t *testing.T) {
	b := netlist.NewBuilder("tight")
	b.SetCore(geom.Rect{XMax: 20, YMax: 20})
	var pins []netlist.PinSpec
	for i := 0; i < 360; i++ {
		id := b.AddCell(nm(i), 1, 1)
		if i < 5 {
			pins = append(pins, netlist.PinSpec{Cell: id})
		}
	}
	b.AddNet("n", 1, pins)
	b.AddUniformRows(20, 1, 1)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range nl.Movables() {
		nl.Cells[i].SetCenter(geom.Point{X: 10 + float64(k%5)/2, Y: 10 + float64(k/60)})
	}
	if err := LegalizeAbacus(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	if v := Check(nl, 1e-6); len(v) != 0 {
		t.Fatalf("violations: %+v", v[:min(len(v), 5)])
	}
}
