// Package legalize converts a (near-feasible) global placement into a legal
// one: standard cells are snapped into rows and site columns without
// overlap using a Tetris-style greedy that minimizes displacement, and
// movable macros are packed first with an expanding-ring search. The result
// is the substrate on which detailed placement operates — the role
// FastPlace-DP's legalization phase plays in the paper's flow.
package legalize

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"complx/internal/geom"
	"complx/internal/netlist"
	"complx/internal/obs"
)

// Options tunes legalization.
type Options struct {
	// MaxDisplacement bounds the row search around each cell's desired
	// position, in row heights. <= 0 means unlimited.
	MaxDisplacement float64
	// Obs, when non-nil, records a span per legalization call plus
	// legalized-cell counts and wall-clock. Read-only instrumentation;
	// results are identical with or without it.
	Obs *obs.Observer
}

// observe opens the instrumentation span for one legalizer invocation and
// returns the closure that finishes it: cell count, wall-clock counter and
// span end. Shared by the Tetris and Abacus entry points.
func (opt Options) observe(name string, nl *netlist.Netlist) func() {
	o := opt.Obs
	if o == nil {
		return func() {}
	}
	start := time.Now()
	sp := o.StartSpan(name)
	return func() {
		d := time.Since(start)
		sp.SetAttr("cells", float64(len(nl.Movables())))
		sp.End()
		o.AddCount(obs.MetricLegalizedCells, float64(len(nl.Movables())))
		o.AddSeconds(obs.MetricLegalizeSeconds, d)
	}
}

// Legalize moves every movable cell of nl to a legal position: macros
// first (overlap-free, clamped to the core), then standard cells into rows
// and sites. Fixed cells are obstacles. Returns an error when a cell cannot
// be placed.
func Legalize(nl *netlist.Netlist, opt Options) error {
	return LegalizeCtx(context.Background(), nl, opt)
}

// ctxCheckStride is how many cells (or macros) are legalized between
// cooperative cancellation checks. Small enough that even modest netlists
// observe a done context within a fraction of the total legalization time,
// large enough that the atomic ctx.Err() load never shows up in profiles.
const ctxCheckStride = 256

// LegalizeCtx is Legalize with cooperative cancellation: the context is
// polled per macro and every ctxCheckStride standard cells. On cancellation
// the cells placed so far keep their legal positions, the rest keep their
// global-placement positions, and the returned error wraps ctx.Err().
// Callers that must deliver a fully legal placement after cancellation can
// rerun under context.WithoutCancel.
func LegalizeCtx(ctx context.Context, nl *netlist.Netlist, opt Options) error {
	if len(nl.Rows) == 0 {
		return fmt.Errorf("legalize: netlist %q has no rows", nl.Name)
	}
	defer opt.observe("legalize_tetris", nl)()
	obstacles := fixedObstacles(nl)
	macros := movableMacros(nl)
	if err := packMacros(ctx, nl, macros, obstacles); err != nil {
		return err
	}
	for _, m := range macros {
		obstacles = append(obstacles, nl.Cells[m].Rect())
	}
	return placeCells(ctx, nl, obstacles, opt)
}

func fixedObstacles(nl *netlist.Netlist) []geom.Rect {
	var out []geom.Rect
	for i := range nl.Cells {
		if nl.Cells[i].Fixed() {
			r := nl.Cells[i].Rect().Intersect(nl.Core)
			if !r.Empty() {
				out = append(out, r)
			}
		}
	}
	return out
}

func movableMacros(nl *netlist.Netlist) []int {
	var out []int
	for _, i := range nl.Movables() {
		if nl.Cells[i].Kind == netlist.Macro {
			out = append(out, i)
		}
	}
	// Pack large macros first: they are hardest to fit.
	sort.Slice(out, func(a, b int) bool {
		return nl.Cells[out[a]].Area() > nl.Cells[out[b]].Area()
	})
	return out
}

// packMacros places movable macros one by one at the nearest overlap-free
// location found by an expanding ring search on a row-height lattice.
func packMacros(ctx context.Context, nl *netlist.Netlist, macros []int, fixed []geom.Rect) error {
	step := nl.RowHeight()
	if step <= 0 {
		step = 1
	}
	var placed []geom.Rect
	overlaps := func(r geom.Rect) bool {
		for _, o := range fixed {
			if r.Intersects(o) {
				return true
			}
		}
		for _, o := range placed {
			if r.Intersects(o) {
				return true
			}
		}
		return false
	}
	for _, m := range macros {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("legalize: cancelled while packing macros: %w", err)
		}
		c := &nl.Cells[m]
		want := nl.Core.ClampRect(c.Rect())
		// Snap to the row lattice.
		want = want.Translate(0, snap(want.YMin-nl.Core.YMin, step)+nl.Core.YMin-want.YMin)
		want = nl.Core.ClampRect(want)
		found := false
		maxRing := int(math.Ceil(math.Max(nl.Core.Width(), nl.Core.Height()) / step))
		for ring := 0; ring <= maxRing && !found; ring++ {
			for _, d := range ringOffsets(ring) {
				cand := want.Translate(float64(d[0])*step, float64(d[1])*step)
				cand = nl.Core.ClampRect(cand)
				if !overlaps(cand) {
					c.X, c.Y = cand.XMin, cand.YMin
					placed = append(placed, cand)
					found = true
					break
				}
			}
		}
		if !found {
			return fmt.Errorf("legalize: cannot place macro %q", c.Name)
		}
	}
	return nil
}

// ringOffsets enumerates lattice offsets at L∞ ring distance r.
func ringOffsets(r int) [][2]int {
	if r == 0 {
		return [][2]int{{0, 0}}
	}
	var out [][2]int
	for dx := -r; dx <= r; dx++ {
		out = append(out, [2]int{dx, -r}, [2]int{dx, r})
	}
	for dy := -r + 1; dy < r; dy++ {
		out = append(out, [2]int{-r, dy}, [2]int{r, dy})
	}
	return out
}

func snap(v, step float64) float64 {
	return math.Round(v/step) * step
}

// rowState tracks free intervals of one row during Tetris packing.
type rowState struct {
	row  netlist.Row
	free []geom.Interval // sorted, disjoint
}

// carve removes [lo, hi] from the free intervals.
func (rs *rowState) carve(lo, hi float64) {
	var out []geom.Interval
	for _, iv := range rs.free {
		if hi <= iv.Lo || lo >= iv.Hi {
			out = append(out, iv)
			continue
		}
		if lo > iv.Lo {
			out = append(out, geom.Interval{Lo: iv.Lo, Hi: lo})
		}
		if hi < iv.Hi {
			out = append(out, geom.Interval{Lo: hi, Hi: iv.Hi})
		}
	}
	rs.free = out
}

// bestSlot returns the placement x in this row closest to wantX for a cell
// of width w, and whether one exists. Positions are site-aligned and, when
// allow is non-nil, restricted to the interval [allow.Lo, allow.Hi-w].
func (rs *rowState) bestSlot(wantX, w float64, allow *geom.Interval) (float64, bool) {
	site := rs.row.SiteWidth
	if site <= 0 {
		site = 1
	}
	best, ok := 0.0, false
	bestCost := math.Inf(1)
	for _, iv := range rs.free {
		if allow != nil {
			iv = geom.Interval{Lo: math.Max(iv.Lo, allow.Lo), Hi: math.Min(iv.Hi, allow.Hi)}
		}
		if iv.Len() < w-1e-9 {
			continue
		}
		x := geom.Clamp(wantX, iv.Lo, iv.Hi-w)
		// Align to the site grid within the interval.
		x = rs.row.XMin + math.Round((x-rs.row.XMin)/site)*site
		for x < iv.Lo-1e-9 {
			x += site
		}
		for x+w > iv.Hi+1e-9 {
			x -= site
		}
		if x < iv.Lo-1e-9 {
			continue
		}
		cost := math.Abs(x - wantX)
		if cost < bestCost {
			bestCost, best, ok = cost, x, true
		}
	}
	return best, ok
}

// placeCells runs the Tetris greedy over standard cells.
func placeCells(ctx context.Context, nl *netlist.Netlist, obstacles []geom.Rect, opt Options) error {
	rows := make([]*rowState, len(nl.Rows))
	for i, r := range nl.Rows {
		rs := &rowState{row: r, free: []geom.Interval{{Lo: r.XMin, Hi: r.XMax}}}
		for _, o := range obstacles {
			if o.YMin < r.Y+r.Height && o.YMax > r.Y {
				rs.carve(o.XMin, o.XMax)
			}
		}
		rows[i] = rs
	}
	rowIdxByY := make([]int, len(rows))
	for i := range rowIdxByY {
		rowIdxByY[i] = i
	}
	sort.Slice(rowIdxByY, func(a, b int) bool { return rows[rowIdxByY[a]].row.Y < rows[rowIdxByY[b]].row.Y })

	var cells []int
	for _, i := range nl.Movables() {
		if nl.Cells[i].Kind == netlist.Std {
			cells = append(cells, i)
		}
	}
	// Classic Tetris order: left to right — but region-constrained cells go
	// first so free space inside their regions is not consumed by
	// unconstrained cells.
	sort.Slice(cells, func(a, b int) bool {
		ca, cb := &nl.Cells[cells[a]], &nl.Cells[cells[b]]
		if (ca.Region >= 0) != (cb.Region >= 0) {
			return ca.Region >= 0
		}
		return ca.X < cb.X
	})

	maxDisp := opt.MaxDisplacement
	for n, ci := range cells {
		if n%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("legalize: cancelled after %d of %d cells: %w", n, len(cells), err)
			}
		}
		c := &nl.Cells[ci]
		// Region constraints restrict the allowed rows and x interval; if
		// no constrained slot exists the cell falls back to unconstrained
		// placement (reported by Check).
		var allow *geom.Interval
		var regionY *geom.Interval
		if c.Region >= 0 {
			rr := nl.Regions[c.Region].Rect
			allow = &geom.Interval{Lo: rr.XMin, Hi: rr.XMax}
			regionY = &geom.Interval{Lo: rr.YMin, Hi: rr.YMax}
		}
	retry:
		bestCost := math.Inf(1)
		bestRow, bestX := -1, 0.0
		// Search rows outward from the nearest row.
		near := sort.Search(len(rowIdxByY), func(k int) bool {
			return rows[rowIdxByY[k]].row.Y >= c.Y
		})
		for radius := 0; ; radius++ {
			lo, hi := near-radius, near+radius
			candidates := []int{}
			if lo >= 0 && lo < len(rowIdxByY) {
				candidates = append(candidates, rowIdxByY[lo])
			}
			if hi != lo && hi >= 0 && hi < len(rowIdxByY) {
				candidates = append(candidates, rowIdxByY[hi])
			}
			if lo < 0 && hi >= len(rowIdxByY) {
				break
			}
			prune := true
			for _, ri := range candidates {
				rs := rows[ri]
				dy := math.Abs(rs.row.Y - c.Y)
				if dy < bestCost {
					prune = false
				}
				if regionY != nil && (rs.row.Y < regionY.Lo-1e-9 || rs.row.Y+c.H > regionY.Hi+1e-9) {
					continue
				}
				if maxDisp > 0 && dy > maxDisp*rs.row.Height && bestRow >= 0 {
					continue
				}
				if dy >= bestCost {
					continue
				}
				if x, ok := rs.bestSlot(c.X, c.W, allow); ok {
					cost := dy + math.Abs(x-c.X)
					if cost < bestCost {
						bestCost, bestRow, bestX = cost, ri, x
					}
				}
			}
			// Row vertical distance already exceeds the best total cost in
			// both directions: no better row exists.
			if bestRow >= 0 && prune && radius > 0 {
				break
			}
		}
		if bestRow < 0 {
			if allow != nil {
				// No in-region slot: retry unconstrained rather than fail.
				allow, regionY = nil, nil
				goto retry
			}
			return fmt.Errorf("legalize: no space for cell %q", c.Name)
		}
		rs := rows[bestRow]
		c.X, c.Y = bestX, rs.row.Y
		rs.carve(bestX, bestX+c.W)
	}
	return nil
}

// Violation describes one legality failure.
type Violation struct {
	Kind string
	Cell string
	Msg  string
}

// Check verifies legality: movable std cells aligned to rows and sites, no
// overlaps among movable cells or against fixed obstacles, everything in
// core. Returns all violations found (capped at 100).
func Check(nl *netlist.Netlist, tol float64) []Violation {
	var out []Violation
	add := func(kind, cell, msg string) {
		if len(out) < 100 {
			out = append(out, Violation{kind, cell, msg})
		}
	}
	rowAt := make(map[float64]netlist.Row, len(nl.Rows))
	for _, r := range nl.Rows {
		rowAt[r.Y] = r
	}
	var rects []geom.Rect
	var names []string
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Fixed() {
			continue
		}
		if c.Kind == netlist.Std {
			matched := false
			for y, r := range rowAt {
				if math.Abs(c.Y-y) <= tol {
					site := r.SiteWidth
					if site <= 0 {
						site = 1
					}
					k := (c.X - r.XMin) / site
					if math.Abs(k-math.Round(k)) > tol {
						add("site", c.Name, fmt.Sprintf("x=%g not site-aligned", c.X))
					}
					matched = true
					break
				}
			}
			if !matched {
				add("row", c.Name, fmt.Sprintf("y=%g not on a row", c.Y))
			}
		}
		if !nl.Core.Expand(tol).ContainsRect(c.Rect()) {
			add("core", c.Name, "outside core")
		}
		rects = append(rects, c.Rect())
		names = append(names, c.Name)
	}
	// Overlaps: sweep by x.
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rects[order[a]].XMin < rects[order[b]].XMin })
	for a := 0; a < len(order); a++ {
		ra := rects[order[a]]
		for b := a + 1; b < len(order); b++ {
			rb := rects[order[b]]
			if rb.XMin >= ra.XMax-tol {
				break
			}
			if ra.Intersect(rb).Width() > tol && ra.Intersect(rb).Height() > tol {
				add("overlap", names[order[a]], "overlaps "+names[order[b]])
			}
		}
	}
	// Movable vs fixed overlaps.
	for i := range nl.Cells {
		if !nl.Cells[i].Fixed() {
			continue
		}
		fr := nl.Cells[i].Rect()
		for k, r := range rects {
			ov := fr.Intersect(r)
			if ov.Width() > tol && ov.Height() > tol {
				add("fixed-overlap", names[k], "overlaps fixed "+nl.Cells[i].Name)
			}
		}
	}
	return out
}

// TotalDisplacement returns the summed L1 center displacement between a
// snapshot (from Netlist.SnapshotPositions) and the current placement,
// counting movable cells only.
func TotalDisplacement(nl *netlist.Netlist, snap []geom.Point) float64 {
	var d float64
	for _, i := range nl.Movables() {
		c := &nl.Cells[i]
		d += math.Abs(c.X-snap[i].X) + math.Abs(c.Y-snap[i].Y)
	}
	return d
}
