package complx

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"complx/internal/chkpt"
	"complx/internal/perr"
	"complx/internal/resilience"
)

// CheckpointOptions enables persistent checkpoint/resume for the global
// placement stage (DESIGN.md §10). When Dir is non-empty, the run writes a
// versioned, checksummed snapshot of the complete engine state to
// Dir/complx.ckpt every Interval-th iteration (atomically: a torn write can
// never corrupt the previous checkpoint) and best-effort on cancellation.
//
// With Resume set, a run first looks for an existing checkpoint in Dir
// written by the same design and options (verified by fingerprint) and, if
// found, continues from it — bitwise identical to the uninterrupted run. A
// missing checkpoint file starts a fresh run; a mismatched or corrupt one
// is rejected with a *PlaceError (stage "checkpoint").
type CheckpointOptions struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Interval is the number of iterations between snapshots (0 → 5).
	Interval int
	// Resume continues from an existing checkpoint in Dir when present.
	Resume bool
}

// RecoveryEvent records one solver fallback-ladder attempt (or
// checkpoint-save failure) in Result.Recovery. See DESIGN.md §10 for the
// ladder's rungs and semantics.
type RecoveryEvent = resilience.Event

// checkpointFingerprint digests everything a checkpoint must agree on to be
// resumable: the algorithm, the design identity and geometry, and every
// option knob that steers the placement trajectory. Two runs with equal
// fingerprints and equal inputs follow bitwise-identical trajectories, so a
// checkpoint from one is a valid resume point for the other.
func checkpointFingerprint(nl *Netlist, opt Options) [32]byte {
	// Geometry digest: per-cell kind, size and initial position. This pins
	// the checkpoint to the exact input placement file, not just its name.
	h := sha256.New()
	var buf [8]byte
	f := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		h.Write([]byte{byte(c.Kind)})
		f(c.W)
		f(c.H)
		f(c.X)
		f(c.Y)
	}
	for _, p := range opt.CellPenalty {
		f(p)
	}
	parts := []string{
		"alg=" + opt.Algorithm.String(),
		"design=" + nl.Name,
		fmt.Sprintf("cells=%d nets=%d pins=%d", nl.NumCells(), nl.NumNets(), nl.NumPins()),
		fmt.Sprintf("core=%g,%g,%g,%g", nl.Core.XMin, nl.Core.YMin, nl.Core.XMax, nl.Core.YMax),
		fmt.Sprintf("geom=%x", h.Sum(nil)),
		fmt.Sprintf("density=%g maxiter=%d", opt.TargetDensity, opt.MaxIterations),
		fmt.Sprintf("finest=%t projdp=%t lse=%t pnorm=%t model=%d", opt.FinestGrid, opt.ProjectionDP, opt.UseLSE, opt.UsePNorm, int(opt.Model)),
		fmt.Sprintf("routability=%t alpha=%g", opt.Routability, opt.RoutabilityAlpha),
		// The preconditioner changes the CG arithmetic, hence the placement
		// trajectory: a checkpoint is only resumable under the same kind.
		"precond=" + opt.Precond,
		// The V-cycle shape determines which netlist each snapshot level
		// belongs to; a checkpoint is only resumable under the same shape.
		fmt.Sprintf("multilevel=%t target=%d levels=%d refine=%d",
			opt.Multilevel.Enabled, opt.Multilevel.TargetCells,
			opt.Multilevel.MaxLevels, opt.Multilevel.RefineIters),
		// The portfolio shape determines the member table and RNG streams a
		// snapshot carries, and the seed every perturbation derives from; a
		// portfolio checkpoint is only resumable under the same search.
		fmt.Sprintf("portfolio=%t members=%d rounds=%d cull=%g seed=%d",
			opt.Portfolio.Enabled, opt.Portfolio.Members, opt.Portfolio.Rounds,
			opt.Portfolio.CullFraction, opt.Portfolio.Seed),
	}
	return chkpt.Fingerprint(parts...)
}

// setupCheckpoint builds the persistent checkpoint manager (and, with
// Resume, loads the saved state) for a run. A nil manager means
// checkpointing is disabled. Portfolio runs persist and resume the
// portfolio state (Dir/portfolio.ckpt, the whole member table) instead of a
// single-engine snapshot — the two never mix: a flat run ignores
// portfolio.ckpt and a portfolio run ignores complx.ckpt.
func setupCheckpoint(nl *Netlist, opt Options) (*chkpt.Manager, *chkpt.State, *chkpt.PortfolioState, error) {
	co := opt.Checkpoint
	if co.Dir == "" {
		if co.Resume {
			return nil, nil, nil, perr.New(perr.StageCheckpoint,
				"complx: Checkpoint.Resume requires Checkpoint.Dir")
		}
		return nil, nil, nil, nil
	}
	if opt.Clustered && (opt.Algorithm == AlgComPLx || opt.Algorithm == AlgSimPL) {
		return nil, nil, nil, perr.New(perr.StageCheckpoint,
			"complx: checkpointing is not supported with Clustered multilevel placement")
	}
	m := &chkpt.Manager{
		Dir:         co.Dir,
		Interval:    co.Interval,
		Fingerprint: checkpointFingerprint(nl, opt),
		Obs:         opt.Observer,
	}
	var st *chkpt.State
	var pf *chkpt.PortfolioState
	if co.Resume {
		var err error
		switch {
		case opt.Portfolio.Enabled:
			if m.PortfolioExists() {
				pf, err = m.LoadPortfolio()
			}
		case m.Exists():
			st, err = m.Load()
		}
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return m, st, pf, nil
}
