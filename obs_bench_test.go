package complx_test

import (
	"testing"

	"complx"
)

// BenchmarkObserverOverhead is the nil-observer fast-path guard for the
// full placement flow: the "nil" variant runs the exact instrumented code
// with Options.Observer == nil (one predicted branch per hook site, zero
// allocations — see the internal/obs micro-benchmarks), the "enabled"
// variant attaches a live observer. Compare with
//
//	go test -bench=ObserverOverhead -benchtime=5x
//
// The nil variant must be within noise (<1%) of the pre-observability
// baseline; the enabled variant shows the full instrumentation cost.
func BenchmarkObserverOverhead(b *testing.B) {
	spec, _ := complx.BenchmarkByName("adaptec1")
	spec = complx.ScaleBenchmark(spec, 0.1)
	place := func(b *testing.B, observer *complx.Observer) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			nl, err := complx.Generate(spec)
			if err != nil {
				b.Fatal(err)
			}
			res, err := complx.Place(nl, complx.Options{
				MaxIterations: 30,
				Observer:      observer,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.HPWL, "hpwl")
		}
	}
	b.Run("nil", func(b *testing.B) { place(b, nil) })
	b.Run("enabled", func(b *testing.B) { place(b, complx.NewObserver()) })
}
