// Benchmarks regenerating every table and figure of the paper's evaluation
// (one testing.B per exhibit; see DESIGN.md §4). Scaled-down ISPD-analog
// suites keep wall-clock reasonable: pass -benchtime=1x for a single pass
// or raise benchScale for larger runs, e.g.
//
//	go test -bench=Table1 -benchtime=1x -benchscale=0.5
package complx_test

import (
	"flag"
	"io"
	"testing"

	"complx/internal/experiments"
)

var benchScale = flag.Float64("benchscale", 0.12, "benchmark suite scale factor for paper-reproduction benches")

func benchCfg() experiments.Config {
	return experiments.Config{Scale: *benchScale}
}

// BenchmarkTable1ISPD2005 reproduces Table 1: legal HPWL + runtime for the
// best-published proxy (SimPL) and the three ComPLx configurations on the
// ISPD 2005 analogs.
func BenchmarkTable1ISPD2005(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HPWLRatio["best"], "bestHPWL/complx")
		b.ReportMetric(res.HPWLRatio["finest"], "finestHPWL/complx")
		b.ReportMetric(res.HPWLRatio["projdp"], "projdpHPWL/complx")
		b.ReportMetric(res.RuntimeRatio["projdp"], "projdpTime/complx")
	}
}

// BenchmarkTable2ISPD2006 reproduces Table 2: scaled HPWL with overflow
// penalties under per-design density targets and movable macros.
func BenchmarkTable2ISPD2006(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ScaledRatio["nlp"], "nlpScaled/complx")
		b.ReportMetric(res.ScaledRatio["fastplace"], "fpScaled/complx")
		b.ReportMetric(res.ScaledRatio["rql"], "rqlScaled/complx")
		b.ReportMetric(res.AvgPenalty["complx"], "complxPenalty%")
	}
}

// BenchmarkFigure1Convergence reproduces Figure 1: the L/Φ/Π progression on
// the largest 2005 analog.
func BenchmarkFigure1Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		h := res.History
		b.ReportMetric(float64(len(h)), "iterations")
		if len(h) > 0 {
			b.ReportMetric(h[len(h)-1].Pi/h[0].Pi, "PiFinal/PiStart")
			b.ReportMetric(h[len(h)-1].Phi/h[0].Phi, "PhiFinal/PhiStart")
		}
	}
}

// BenchmarkFigure2Shredding reproduces Figure 2: macro shredding statistics
// on the newblue1 analog at an intermediate placement.
func BenchmarkFigure2Shredding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Macros)), "macros")
		b.ReportMetric(res.MeanHalo, "haloRatio")
	}
}

// BenchmarkFigure3Scalability reproduces Figure 3 / §S3: final λ and
// iteration counts across all sixteen analogs.
func BenchmarkFigure3Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		maxIter, maxLambda := 0.0, 0.0
		for _, r := range res.Rows {
			if float64(r.Iterations) > maxIter {
				maxIter = float64(r.Iterations)
			}
			if r.FinalLambda > maxLambda {
				maxLambda = r.FinalLambda
			}
		}
		b.ReportMetric(maxIter, "maxIterations")
		b.ReportMetric(maxLambda, "maxFinalLambda")
	}
}

// BenchmarkFigure4Regions reproduces Figure 4 / §S5: hard region constraint
// enforcement through the feasibility projection.
func BenchmarkFigure4Regions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HPWLConstrained/res.HPWLFree, "HPWLwithRegion/free")
		b.ReportMetric(float64(res.ViolationsAfter), "violations")
	}
}

// BenchmarkFigure5TimingDriven reproduces Figure 5 / §S6: critical-path net
// weighting shrinks paths with little total-HPWL cost.
func BenchmarkFigure5TimingDriven(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Runs) == 3 {
			b.ReportMetric(res.Runs[2].PathHPWL/res.Runs[0].PathHPWL, "pathHPWL(w40/w1)")
			b.ReportMetric(res.Runs[2].TotalHPWL/res.Runs[0].TotalHPWL, "totalHPWL(w40/w1)")
		}
	}
}

// BenchmarkS2SelfConsistency reproduces §S2: the Formula 11
// self-consistency statistics of the feasibility projection.
func BenchmarkS2SelfConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.S2(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Consistent, "consistent%")
		b.ReportMetric(100*res.Inconsistent, "inconsistent%")
		b.ReportMetric(100*res.PremiseFailed, "premiseFailed%")
	}
}

// BenchmarkAblations quantifies the design choices DESIGN.md calls out
// (net models, interconnect instantiations, λ schedules, per-macro λ
// scaling, detailed-placement passes).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]float64{}
		for _, r := range res.Rows {
			byName[r.Group+"/"+r.Name] = r.HPWL
		}
		if v, ok := byName["netmodel/clique"]; ok && byName["netmodel/b2b"] > 0 {
			b.ReportMetric(v/byName["netmodel/b2b"], "cliqueHPWL/b2b")
		}
		if v, ok := byName["schedule/simpl-linear"]; ok && byName["schedule/complx"] > 0 {
			b.ReportMetric(v/byName["schedule/complx"], "simplHPWL/complx")
		}
		if v, ok := byName["detailed/none"]; ok && byName["detailed/full"] > 0 {
			b.ReportMetric(v/byName["detailed/full"], "noDPHPWL/fullDP")
		}
	}
}

// BenchmarkS3RuntimeScaling reproduces §S3's runtime claim: ComPLx scales
// near-linearly with design size while FastPlace-CS grows faster.
func BenchmarkS3RuntimeScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RuntimeScaling(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ComPLxExponent, "complxExponent")
		b.ReportMetric(res.FastPlaceExponent, "fastplaceExponent")
	}
}

// BenchmarkStructuredCircuits probes the paper-intro observation that
// placers lag manual layouts on structured circuits: HPWL ratios versus the
// natural mesh placement.
func BenchmarkStructuredCircuits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Structured(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows_ {
			if r.Placer == "complx" {
				b.ReportMetric(r.Ratio, "complxHPWL/manual")
			}
			if r.Placer == "fastplace-cs" {
				b.ReportMetric(r.Ratio, "fastplaceHPWL/manual")
			}
		}
	}
}
