// Region constraints (paper §S5, Figure 4): a group of cells is confined to
// a rectangle; ComPLx enforces the constraint through the feasibility
// projection and HPWL barely changes.
//
// Run with: go run ./examples/regions
package main

import (
	"fmt"
	"log"

	"complx"
)

func main() {
	spec := complx.BenchSpec{Name: "regions-demo", NumCells: 2000, Seed: 3, Utilization: 0.6}

	// Unconstrained reference run.
	free, err := complx.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	resFree, err := complx.Place(free, complx.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Constrained run: 50 cells confined to the upper-right quadrant.
	nl, err := complx.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	region := complx.Rect{
		XMin: nl.Core.XMax * 0.5, YMin: nl.Core.YMax * 0.5,
		XMax: nl.Core.XMax * 0.95, YMax: nl.Core.YMax * 0.95,
	}
	nl.Regions = append(nl.Regions, complx.RegionConstraint{Name: "clk_domain", Rect: region})
	group := nl.Movables()[:50]
	for _, ci := range group {
		nl.Cells[ci].Region = 0
	}
	res, err := complx.Place(nl, complx.Options{})
	if err != nil {
		log.Fatal(err)
	}

	violations := 0
	for _, ci := range group {
		if !region.ContainsRect(nl.Cells[ci].Rect()) {
			violations++
		}
	}
	fmt.Printf("region %v on %d cells\n", region, len(group))
	fmt.Printf("HPWL unconstrained: %.1f\n", resFree.HPWL)
	fmt.Printf("HPWL with region:   %.1f (%.3fx)\n", res.HPWL, res.HPWL/resFree.HPWL)
	fmt.Printf("violations:         %d\n", violations)
}
