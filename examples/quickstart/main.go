// Quickstart: build a small netlist with the public API, place it with
// ComPLx, and print the resulting metrics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"complx"
)

func main() {
	// A 9-cell design: a 3x3 logic mesh between west and east I/O pads.
	b := complx.NewBuilder("quickstart")
	b.SetCore(complx.Rect{XMax: 30, YMax: 30})
	b.AddUniformRows(30, 1, 1)

	var mesh [3][3]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			mesh[i][j] = b.AddCell(fmt.Sprintf("u%d%d", i, j), 2, 1)
		}
	}
	west := b.AddFixed("pad_w", 0, 14, 1, 1)
	east := b.AddFixed("pad_e", 29, 14, 1, 1)

	// Rows of the mesh are chained west to east.
	for i := 0; i < 3; i++ {
		b.AddNet(fmt.Sprintf("in%d", i), 1, []complx.PinSpec{{Cell: west}, {Cell: mesh[i][0]}})
		for j := 0; j+1 < 3; j++ {
			b.AddNet(fmt.Sprintf("h%d%d", i, j), 1, []complx.PinSpec{
				{Cell: mesh[i][j], DX: 1}, {Cell: mesh[i][j+1], DX: -1},
			})
		}
		b.AddNet(fmt.Sprintf("out%d", i), 1, []complx.PinSpec{{Cell: mesh[i][2]}, {Cell: east}})
	}
	// One vertical net ties the middle column together.
	b.AddNet("tie", 2, []complx.PinSpec{
		{Cell: mesh[0][1]}, {Cell: mesh[1][1]}, {Cell: mesh[2][1]},
	})

	nl, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design:", nl.Stats())

	res, err := complx.Place(nl, complx.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HPWL:          %.1f\n", res.HPWL)
	fmt.Printf("GP iterations: %d (converged=%v)\n", res.GlobalIterations, res.Converged)
	fmt.Printf("legal:         %v (%d violations)\n", res.Legalized, res.LegalViolations)
	fmt.Println("final cell positions:")
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Movable() {
			fmt.Printf("  %-4s at (%4.1f, %4.1f)\n", c.Name, c.X, c.Y)
		}
	}
}
