// Mixed-size placement: an ISPD-2006-style design with movable macros.
// ComPLx handles the macros through shredding in the feasibility projection
// (paper §5, Figure 2); this example prints the macro locations, residual
// macro overlap after global placement, and the final legal metrics.
//
// Run with: go run ./examples/mixedsize
package main

import (
	"fmt"
	"log"

	"complx"
)

func main() {
	spec := complx.BenchSpec{
		Name:          "mixedsize-demo",
		NumCells:      3000,
		Seed:          7,
		NumMacros:     6,
		MacroAreaFrac: 0.3,
		MovableMacros: true,
		Utilization:   0.5,
		TargetDensity: 0.8,
	}
	nl, err := complx.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design:", nl.Stats())

	res, err := complx.Place(nl, complx.Options{TargetDensity: spec.TargetDensity})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scaled HPWL: %.0f (overflow penalty %.2f%%)\n", res.ScaledHPWL, res.OverflowPercent)
	fmt.Printf("iterations:  %d, final lambda %.3f\n", res.GlobalIterations, res.FinalLambda)
	fmt.Println("macros (legalized, overlap-free):")
	var macros []complx.Rect
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Kind == complx.MacroCell {
			fmt.Printf("  %-4s %4.0fx%-4.0f at (%5.1f, %5.1f)\n", c.Name, c.W, c.H, c.X, c.Y)
			macros = append(macros, c.Rect())
		}
	}
	var overlap float64
	for i := range macros {
		for j := i + 1; j < len(macros); j++ {
			overlap += macros[i].OverlapArea(macros[j])
		}
	}
	fmt.Printf("pairwise macro overlap after legalization: %.2f\n", overlap)
	if v := complx.CheckLegal(nl); len(v) > 0 {
		fmt.Printf("legality violations: %d (first: %s)\n", len(v), v[0])
	} else {
		fmt.Println("placement is legal")
	}
}
