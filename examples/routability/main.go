// Routability-driven placement (paper §5, SimPLR/Ripple direction): RUDY
// congestion is estimated every iteration and congested cells are inflated
// before the feasibility projection, trading a little wirelength for less
// congestion. This example compares the default and routability-driven
// modes and prints ASCII congestion maps.
//
// Run with: go run ./examples/routability
package main

import (
	"fmt"
	"log"
	"os"

	"complx"
)

func main() {
	spec := complx.BenchSpec{
		Name: "routability-demo", NumCells: 2500, Seed: 9,
		Utilization: 0.75, GlobalNetFrac: 0.12, // extra global nets create congestion
	}

	run := func(routability bool) (*complx.Netlist, *complx.Result) {
		nl, err := complx.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := complx.Place(nl, complx.Options{
			Routability:      routability,
			RoutabilityAlpha: 1.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		return nl, res
	}

	base, baseRes := run(false)
	rt, rtRes := run(true)

	fmt.Printf("default:      HPWL %.0f, %d iterations\n", baseRes.HPWL, baseRes.GlobalIterations)
	fmt.Printf("routability:  HPWL %.0f (%.3fx), %d iterations\n",
		rtRes.HPWL, rtRes.HPWL/baseRes.HPWL, rtRes.GlobalIterations)

	fmt.Println("\ncongestion, default mode:")
	complx.PrintCongestionMap(os.Stdout, base, 56, 18, 0)
	fmt.Println("\ncongestion, routability mode:")
	complx.PrintCongestionMap(os.Stdout, rt, 56, 18, 0)
}
