// Timing-driven placement (paper Formula 13, §S6, Figure 5): run STA-lite
// on a stable placement, pick the most critical paths, raise their net
// weights and criticality penalties, and re-place. The critical paths
// shrink while total HPWL barely moves.
//
// Run with: go run ./examples/timingdriven
package main

import (
	"fmt"
	"log"

	"complx"
)

func main() {
	spec := complx.BenchSpec{Name: "timing-demo", NumCells: 2500, Seed: 5, Utilization: 0.65}

	// Baseline placement and timing analysis.
	nl, err := complx.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	base, err := complx.Place(nl, complx.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rep := complx.AnalyzeTiming(nl, 0, 0)
	paths := complx.CriticalPaths(nl, 3)
	if len(paths) == 0 {
		log.Fatal("no critical paths found")
	}
	fmt.Printf("baseline: HPWL=%.0f, max path delay=%.1f, WNS=%.2f\n", base.HPWL, rep.MaxDelay, rep.WNS)

	// Collect the nets of the top critical paths.
	netSet := map[int]bool{}
	for _, p := range paths {
		nets := p.Nets
		if len(nets) > 8 {
			nets = nets[:8]
		}
		for _, ni := range nets {
			netSet[ni] = true
		}
	}
	var nets []int
	for ni := range netSet {
		nets = append(nets, ni)
	}
	pathHPWL := func(n *complx.Netlist) float64 {
		var s float64
		for _, ni := range nets {
			s += netHPWL(n, ni)
		}
		return s
	}
	fmt.Printf("critical nets: %d, combined HPWL %.1f\n", len(nets), pathHPWL(nl))

	// Timing-driven rerun: boosted net weights + criticality-weighted
	// penalty (Formula 13).
	for _, weight := range []float64{20, 40} {
		nl2, err := complx.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		complx.BoostNetWeights(nl2, nets, weight)
		gamma := complx.TimingCriticalities(nl2, rep, 0.5)
		res, err := complx.Place(nl2, complx.Options{CellPenalty: gamma})
		if err != nil {
			log.Fatal(err)
		}
		rep2 := complx.AnalyzeTiming(nl2, 0, 0)
		fmt.Printf("weight %2.0f: HPWL=%.0f (%.3fx), path HPWL=%.1f, max delay=%.1f\n",
			weight, res.HPWL, res.HPWL/base.HPWL, pathHPWL(nl2), rep2.MaxDelay)
	}
}

// netHPWL computes the half-perimeter of one net via the public API.
func netHPWL(nl *complx.Netlist, ni int) float64 {
	net := &nl.Nets[ni]
	if len(net.Pins) < 2 {
		return 0
	}
	var xmin, xmax, ymin, ymax float64
	for k, p := range net.Pins {
		pt := nl.PinPosition(p)
		if k == 0 {
			xmin, xmax, ymin, ymax = pt.X, pt.X, pt.Y, pt.Y
			continue
		}
		if pt.X < xmin {
			xmin = pt.X
		}
		if pt.X > xmax {
			xmax = pt.X
		}
		if pt.Y < ymin {
			ymin = pt.Y
		}
		if pt.Y > ymax {
			ymax = pt.Y
		}
	}
	return (xmax - xmin) + (ymax - ymin)
}
