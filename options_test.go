package complx

import (
	"reflect"
	"testing"
)

// engineInternalCoreOptions lists the core.Options fields that the facade
// deliberately does not expose, each with the reason. Every other
// core.Options field must be forwarded by coreOptions —
// TestCoreOptionsForwarding fails when a new core field is neither
// forwarded nor recorded here.
var engineInternalCoreOptions = map[string]string{
	"LSEGamma":             "LSE smoothing is self-calibrated from the core width",
	"PNormP":               "p exponent is fixed to the paper's default",
	"InitialSolves":        "engine default; overridden internally by the clustered flow",
	"GapTol":               "convergence tolerance is the paper's default",
	"PiTol":                "convergence tolerance is the paper's default",
	"MinIterations":        "engine default",
	"Schedule":             "derived from Options.Algorithm (AlgSimPL), not a facade knob",
	"OptimalLeafSpreading": "Table 1 ablation knob, exercised via internal/core only",
	"GridMax":              "engine default projection grid cap",
	"ProjectionRefine":     "constructed by the facade from Options.ProjectionDP",
	"RoutingCapacity":      "self-calibrated RUDY supply",
	"NoMacroLambdaScale":   "paper §5 ablation knob, exercised via internal/core only",
	"Eps":                  "linearization floor is derived from the row height",
	"CG":                   "CG solver tuning stays internal",
	"Checkpoint":           "constructed by the facade from Options.Checkpoint (a chkpt.Manager, wired in PlaceContext, not coreOptions)",
	"Resume":               "loaded by the facade from the checkpoint directory when Options.Checkpoint.Resume is set",
	"PortfolioResume":      "loaded by the facade from the checkpoint directory (portfolio.ckpt) when Options.Checkpoint.Resume is set",
	"RecoveryPolicy":       "engine-internal recovery-ladder tuning; the facade always uses the default policy",
	"PrecondRefresh":       "factor-refresh cadence stays internal; qp.DefaultPrecondRefresh is the measured sweet spot",
}

// TestCoreOptionsForwarding is the contract test for the single
// Options→core.Options conversion point: it fills every facade Options
// field with a non-zero value, runs coreOptions, and requires each
// core.Options field to be either non-zero (forwarded) or explicitly
// allowlisted above. Adding a field to core.Options without updating
// coreOptions or the allowlist fails this test.
func TestCoreOptionsForwarding(t *testing.T) {
	var opt Options
	fillNonZero(t, reflect.ValueOf(&opt).Elem())
	got := reflect.ValueOf(coreOptions(opt))
	typ := got.Type()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if _, internal := engineInternalCoreOptions[f.Name]; internal {
			if !got.Field(i).IsZero() {
				t.Errorf("core.Options.%s is allowlisted as engine-internal but coreOptions sets it; remove the allowlist entry", f.Name)
			}
			continue
		}
		if got.Field(i).IsZero() {
			t.Errorf("core.Options.%s is not forwarded by coreOptions; forward the matching facade option or add an engineInternalCoreOptions entry explaining why not", f.Name)
		}
	}
	// Reject stale allowlist entries so the map tracks core.Options.
	for name := range engineInternalCoreOptions {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("engineInternalCoreOptions lists %q, which is no longer a core.Options field", name)
		}
	}
}

// fillNonZero sets every field of a struct value to a non-zero value of its
// kind so that a pure field-copy is detectable as non-zero output.
func fillNonZero(t *testing.T, v reflect.Value) {
	t.Helper()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Bool:
			f.SetBool(true)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(3)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(3)
		case reflect.Float32, reflect.Float64:
			f.SetFloat(0.5)
		case reflect.String:
			f.SetString("x")
		case reflect.Slice:
			f.Set(reflect.MakeSlice(f.Type(), 1, 1))
		case reflect.Func:
			f.Set(reflect.MakeFunc(f.Type(), func([]reflect.Value) []reflect.Value {
				return nil
			}))
		case reflect.Ptr:
			f.Set(reflect.New(f.Type().Elem()))
		case reflect.Struct:
			fillNonZero(t, f)
		default:
			t.Fatalf("fillNonZero: unhandled kind %v for field %s", f.Kind(), v.Type().Field(i).Name)
		}
	}
}
