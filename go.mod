module complx

go 1.22
