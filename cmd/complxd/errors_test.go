package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"complx"
)

// TestErrorStatusTable pins the full HTTP error surface: every non-2xx
// response carries the structured {"error": {"stage", "message"}} envelope
// with the documented status code, and the overload codes carry Retry-After.
func TestErrorStatusTable(t *testing.T) {
	cases := []struct {
		name       string
		wantCode   int
		wantStage  string // "" = no stage asserted
		wantMsg    string // substring of error.message
		retryAfter bool
		do         func(t *testing.T) *http.Response
	}{
		{
			name: "invalid spec", wantCode: 400, wantMsg: "bench or gen",
			do: func(t *testing.T) *http.Response {
				srv, _ := startTestServer(t, t.TempDir(), 1)
				return postRaw(t, srv, JobSpec{})
			},
		},
		{
			name: "malformed json", wantCode: 400, wantMsg: "decode spec",
			do: func(t *testing.T) *http.Response {
				srv, _ := startTestServer(t, t.TempDir(), 1)
				resp, err := srv.Client().Post(srv.URL+"/jobs", "application/json",
					bytes.NewReader([]byte("{not json")))
				if err != nil {
					t.Fatal(err)
				}
				return resp
			},
		},
		{
			name: "options stage from PlaceError", wantCode: 400, wantStage: "options",
			do: func(t *testing.T) *http.Response {
				srv, _ := startTestServer(t, t.TempDir(), 1)
				bad := testSpec(600, 1, 0)
				bad.Portfolio = true
				bad.PFCullFraction = 7.0
				return postRaw(t, srv, bad)
			},
		},
		{
			name: "unknown job", wantCode: 404, wantMsg: "unknown job",
			do: func(t *testing.T) *http.Response {
				srv, _ := startTestServer(t, t.TempDir(), 1)
				resp, err := srv.Client().Get(srv.URL + "/jobs/job-999999")
				if err != nil {
					t.Fatal(err)
				}
				return resp
			},
		},
		{
			name: "result before finish", wantCode: 409, wantMsg: "is running",
			do: func(t *testing.T) *http.Response {
				srv, _ := startTestServer(t, t.TempDir(), 1)
				j := submit(t, srv, heavySpec(601, 1, 0))
				waitRunning(t, srv, j.ID, time.Minute)
				resp, err := srv.Client().Get(srv.URL + "/jobs/" + j.ID + "/result")
				if err != nil {
					t.Fatal(err)
				}
				return resp
			},
		},
		{
			name: "body too large", wantCode: 413, wantStage: "admission", wantMsg: "limit",
			do: func(t *testing.T) *http.Response {
				cfg := testConfig(1)
				cfg.maxBody = 256
				srv, _ := startTestServerCfg(t, t.TempDir(), cfg)
				big := testSpec(602, 1, 0)
				big.Gen.Name = strings.Repeat("y", 2048)
				return postRaw(t, srv, big)
			},
		},
		{
			name: "rate limited", wantCode: 429, wantStage: "admission", wantMsg: "rate",
			retryAfter: true,
			do: func(t *testing.T) *http.Response {
				cfg := testConfig(1)
				cfg.submitRate = 0.0001
				cfg.submitBurst = 1
				srv, _ := startTestServerCfg(t, t.TempDir(), cfg)
				first := postRaw(t, srv, testSpec(603, 1, 0))
				first.Body.Close()
				return postRaw(t, srv, testSpec(604, 1, 0))
			},
		},
		{
			name: "queue full", wantCode: 503, wantStage: "admission", wantMsg: "queue full",
			retryAfter: true,
			do: func(t *testing.T) *http.Response {
				cfg := testConfig(1)
				cfg.maxQueue = 1
				srv, _ := startTestServerCfg(t, t.TempDir(), cfg)
				blocker := submit(t, srv, heavySpec(605, 1, 0))
				waitRunning(t, srv, blocker.ID, time.Minute)
				submit(t, srv, testSpec(606, 1, 0))
				return postRaw(t, srv, testSpec(607, 1, 0))
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do(t)
			if resp.StatusCode != tc.wantCode {
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body) //nolint:errcheck
				resp.Body.Close()
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantCode, buf.String())
			}
			if tc.retryAfter && resp.Header.Get("Retry-After") == "" {
				t.Errorf("%d without Retry-After header", tc.wantCode)
			}
			det := decodeError(t, resp)
			if det.Message == "" {
				t.Fatalf("empty error.message")
			}
			if tc.wantStage != "" && det.Stage != tc.wantStage {
				t.Errorf("error.stage %q, want %q", det.Stage, tc.wantStage)
			}
			if tc.wantMsg != "" && !strings.Contains(det.Message, tc.wantMsg) {
				t.Errorf("error.message %q, want it to mention %q", det.Message, tc.wantMsg)
			}
		})
	}
}

// TestReadyzFlipsOnDrain pins the readiness probe: 200 while serving, 503
// with a structured body the moment the drain flag is set.
func TestReadyzFlipsOnDrain(t *testing.T) {
	st, err := newStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1)
	hub := complx.NewObsHub()
	sched := newScheduler(st, hub, cfg)
	sv := newServer(sched, hub, cfg, nil)
	srv := httptest.NewServer(sv.handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz while serving: %d, want 200", resp.StatusCode)
	}

	sv.draining.Store(true)
	resp, err = srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", resp.StatusCode)
	}
	det := decodeError(t, resp)
	if det.Stage != "admission" || !strings.Contains(det.Message, "draining") {
		t.Errorf("drain detail %+v, want stage admission + draining", det)
	}

	// Liveness is unaffected by the drain.
	hresp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz while draining: %d, want 200", hresp.StatusCode)
	}
}

// TestErrorBodyJSONShape pins the envelope encoding byte-for-byte-ish: the
// top-level key is "error" and the fields are stage/message.
func TestErrorBodyJSONShape(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, http.StatusBadRequest, &apiError{
		code:  http.StatusBadRequest,
		stage: "admission",
		err:   errors.New("bad thing"),
	})
	var raw map[string]map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if raw["error"]["stage"] != "admission" || raw["error"]["message"] != "bad thing" {
		t.Fatalf("envelope %s", rec.Body.String())
	}
}
