package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeJobRecord persists a hand-built record the way the store would.
func writeJobRecord(t *testing.T, dir string, j *Job) {
	t.Helper()
	jd := filepath.Join(dir, "jobs", j.ID)
	if err := os.MkdirAll(jd, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jd, "job.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverSkipsCorruptRecords pins the corruption contract: a truncated
// job.json, an invalid one and a job directory with no record at all are
// each skipped with a counted warning — never fatal — while healthy records
// recover and run to completion.
func TestRecoverSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()

	// A healthy queued job.
	spec := testSpec(700, 1, 0)
	writeJobRecord(t, dir, &Job{
		ID: "job-000001", Seq: 1, Spec: spec,
		State: StateQueued, Submitted: time.Now().UTC(),
	})
	// Truncated mid-write (no atomic replace ran).
	trunc := filepath.Join(dir, "jobs", "job-000002")
	if err := os.MkdirAll(trunc, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(trunc, "job.json"), []byte(`{"id": "job-0000`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Valid JSON, wrong shape (state is an object).
	bad := filepath.Join(dir, "jobs", "job-000003")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "job.json"), []byte(`{"id": "job-000003", "state": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A directory with no record at all (crash before the first Save).
	if err := os.MkdirAll(filepath.Join(dir, "jobs", "job-000004"), 0o755); err != nil {
		t.Fatal(err)
	}

	srv, sched := startTestServer(t, dir, 1)
	if got := sched.store.CorruptSkipped(); got != 3 {
		t.Fatalf("CorruptSkipped = %d, want 3", got)
	}
	if n := sched.dobs.Counter("complx_recover_corrupt_total").Value(); n != 3 {
		t.Errorf("complx_recover_corrupt_total = %v, want 3", n)
	}

	// Only the healthy job is known, and it runs to completion.
	if got := len(sched.List()); got != 1 {
		t.Fatalf("%d jobs recovered, want 1", got)
	}
	if j := waitDone(t, srv, "job-000001", 2*time.Minute); j.State != StateDone {
		t.Fatalf("recovered job: %s (%s)", j.State, j.Error)
	}

	// The corrupt records stay on disk for forensics.
	for _, id := range []string{"job-000002", "job-000003"} {
		if _, err := os.Stat(filepath.Join(dir, "jobs", id, "job.json")); err != nil {
			t.Errorf("corrupt record %s was removed: %v", id, err)
		}
	}

	// New IDs never collide with skipped directories: the next sequence is
	// past every directory the store could read.
	j, err := sched.Submit(testSpec(701, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if j.Seq <= 4 {
		t.Errorf("new job seq %d, want > 4 (must not reuse a skipped directory)", j.Seq)
	}
}

// TestRecoverQuarantinesCrashLoop pins the breaker at recovery time: a job
// found running with attempts at the cap is quarantined — exactly at the
// cap, with a stage-"quarantine" error — instead of being re-queued.
func TestRecoverQuarantinesCrashLoop(t *testing.T) {
	dir := t.TempDir()
	now := time.Now().UTC()
	started := now.Add(-time.Minute)
	writeJobRecord(t, dir, &Job{
		ID: "job-000001", Seq: 1, Spec: testSpec(710, 1, 0),
		State: StateRunning, Submitted: now, Started: &started,
		Attempts: 3,
	})
	// One attempt below the cap: must be re-queued, not quarantined.
	writeJobRecord(t, dir, &Job{
		ID: "job-000002", Seq: 2, Spec: testSpec(711, 1, 0),
		State: StateRunning, Submitted: now, Started: &started,
		Attempts: 2,
	})

	srv, sched := startTestServer(t, dir, 1) // testConfig: maxAttempts = 3

	q := sched.Get("job-000001")
	if q.State != StateQuarantined {
		t.Fatalf("crash-loop job: state %s, want quarantined", q.State)
	}
	if q.Attempts != 3 {
		t.Fatalf("quarantined at %d attempts, want exactly the cap (3)", q.Attempts)
	}
	if !strings.Contains(q.Error, "crash-loop") {
		t.Errorf("quarantine error %q, want a crash-loop message", q.Error)
	}
	if q.Finished == nil {
		t.Errorf("quarantined job has no finish time")
	}
	if n := sched.dobs.Counter("complx_jobs_quarantined_total").Value(); n != 1 {
		t.Errorf("complx_jobs_quarantined_total = %v, want 1", n)
	}

	// Quarantine is terminal over HTTP: the record says quarantined, the
	// result endpoint answers 409, cancel answers 409.
	if j := getJob(t, srv, "job-000001"); j.State != StateQuarantined {
		t.Fatalf("HTTP view: %s", j.State)
	}
	rresp, err := srv.Client().Get(srv.URL + "/jobs/job-000001/result")
	if err != nil {
		t.Fatal(err)
	}
	if rresp.StatusCode != 409 {
		t.Fatalf("result of quarantined job: %d, want 409", rresp.StatusCode)
	}
	det := decodeError(t, rresp)
	if !strings.Contains(det.Message, "quarantined") {
		t.Errorf("result error %q, want it to mention quarantine", det.Message)
	}

	// The under-cap sibling resumes and completes.
	if j := waitDone(t, srv, "job-000002", 2*time.Minute); j.State != StateDone {
		t.Fatalf("under-cap job: %s (%s)", j.State, j.Error)
	}
}

// TestJanitorRemovesTerminalJobs pins retention: gcOnce removes terminal
// jobs' directories past the cutoff, unregisters their metrics, and leaves
// live jobs alone.
func TestJanitorRemovesTerminalJobs(t *testing.T) {
	srv, sched := startTestServer(t, t.TempDir(), 1)

	done := submit(t, srv, testSpec(720, 1, 0))
	if j := waitDone(t, srv, done.ID, 2*time.Minute); j.State != StateDone {
		t.Fatalf("job: %s (%s)", j.State, j.Error)
	}
	keep := submit(t, srv, heavySpec(721, 1, 0))
	waitRunning(t, srv, keep.ID, time.Minute)

	sched.gcOnce(time.Now().Add(time.Hour)) // cutoff in the future: everything terminal goes

	if j := sched.Get(done.ID); j != nil {
		t.Fatalf("terminal job survived GC: %+v", j)
	}
	if _, err := os.Stat(sched.store.jobDir(done.ID)); !os.IsNotExist(err) {
		t.Errorf("terminal job directory survived GC: %v", err)
	}
	if j := sched.Get(keep.ID); j == nil {
		t.Fatal("running job was GCed")
	}
	if n := sched.dobs.Counter("complx_jobs_gced_total").Value(); n != 1 {
		t.Errorf("complx_jobs_gced_total = %v, want 1", n)
	}
	if j := waitDone(t, srv, keep.ID, 2*time.Minute); j.State != StateDone {
		t.Fatalf("running job after GC: %s (%s)", j.State, j.Error)
	}
}
