package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"complx"
)

// apiError is an error with a fixed HTTP mapping: handlers return it from
// the scheduler/admission layers and writeError renders the right status,
// Retry-After header and structured body without per-handler switches.
type apiError struct {
	code       int    // HTTP status
	stage      string // pipeline/daemon stage for the body (may be empty)
	retryAfter int    // Retry-After seconds; 0 = no header
	err        error  // human-readable cause
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

// errorBody is the structured JSON error envelope every non-2xx response
// carries:
//
//	{"error": {"stage": "admission", "message": "...", "retry_after_seconds": 5}}
//
// Stage comes from the daemon's *apiError or, for placement failures, from
// the *complx.PlaceError the run produced, so clients can dispatch on the
// failing layer without parsing messages.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Stage             string `json:"stage,omitempty"`
	Message           string `json:"message"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// writeError renders err as a structured JSON error. fallback is the status
// used when err carries no *apiError mapping of its own.
func writeError(w http.ResponseWriter, fallback int, err error) {
	code := fallback
	detail := errorDetail{Message: err.Error()}
	var ae *apiError
	if errors.As(err, &ae) {
		code = ae.code
		detail.Stage = ae.stage
		detail.Message = ae.err.Error()
		if ae.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
			detail.RetryAfterSeconds = ae.retryAfter
		}
	}
	if detail.Stage == "" {
		var pe *complx.PlaceError
		if errors.As(err, &pe) {
			detail.Stage = pe.Stage
		}
	}
	writeJSON(w, code, errorBody{Error: detail})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort over HTTP
}
