package main

import (
	"encoding/json"
	"errors"
	"testing"

	"complx"
)

// FuzzJobSpec asserts the job decoder's safety contract on arbitrary bytes:
// decoding never panics, and every spec that Validate accepts is actually
// runnable — in particular, an accepted portfolio configuration re-validates
// cleanly at the facade, so a queued job can never fail on an option the
// server should have rejected at submission.
//
// Run long sessions with e.g.
//
//	go test ./cmd/complxd -fuzz FuzzJobSpec -fuzztime 60s
func FuzzJobSpec(f *testing.F) {
	f.Add(`{"bench":"adaptec1"}`)
	f.Add(`{"bench":"adaptec1","algorithm":"simpl","multilevel":true,"ml_target_cells":500}`)
	f.Add(`{"gen":{"Name":"t","NumCells":64},"threads":2,"priority":5}`)
	// The portfolio-options decoder case: every portfolio field exercised.
	f.Add(`{"bench":"adaptec1","portfolio":true,"pf_members":4,"pf_rounds":3,"pf_cull_fraction":0.25,"pf_seed":7}`)
	f.Add(`{"bench":"adaptec1","portfolio":true,"pf_members":1}`)
	f.Add(`{"bench":"adaptec1","portfolio":true,"pf_cull_fraction":1.5}`)
	f.Add(`{"bench":"adaptec1","portfolio":true,"pf_rounds":-1}`)
	// Governance fields: deadlines must be non-negative and finite-friendly.
	f.Add(`{"bench":"adaptec1","deadline_seconds":30}`)
	f.Add(`{"bench":"adaptec1","deadline_seconds":0.001}`)
	f.Add(`{"bench":"adaptec1","deadline_seconds":-1}`)
	f.Add(`{"bench":"adaptec1","deadline_seconds":1e308}`)
	f.Fuzz(func(t *testing.T, data string) {
		var s JobSpec
		if err := json.Unmarshal([]byte(data), &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		// Accepted specs must satisfy the invariants the scheduler relies on.
		if s.Scale < 0 || s.Threads < 0 {
			t.Fatalf("Validate accepted negative scale/threads: %+v", s)
		}
		if s.DeadlineSeconds < 0 {
			t.Fatalf("Validate accepted a negative deadline: %+v", s)
		}
		if s.Portfolio {
			po := s.portfolioOptions()
			if err := po.Validate(); err != nil {
				t.Fatalf("Validate accepted a portfolio spec the facade rejects: %v (%+v)", err, s)
			}
			if s.Multilevel {
				t.Fatalf("Validate accepted portfolio+multilevel: %+v", s)
			}
		}
	})
}

// TestJobSpecPortfolioValidation pins the up-front rejection of unusable
// portfolio configurations: each arrives as job JSON (the wire format), is
// rejected by Validate before queueing, and the error unwraps to a
// *complx.PlaceError with stage "options".
func TestJobSpecPortfolioValidation(t *testing.T) {
	valid := []string{
		`{"bench":"adaptec1","portfolio":true}`,
		`{"bench":"adaptec1","portfolio":true,"pf_members":4,"pf_rounds":3,"pf_cull_fraction":0.25,"pf_seed":7}`,
		`{"bench":"adaptec1","algorithm":"simpl","portfolio":true,"pf_members":2}`,
	}
	for _, in := range valid {
		var s JobSpec
		if err := json.Unmarshal([]byte(in), &s); err != nil {
			t.Fatalf("decode %s: %v", in, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("valid spec %s rejected: %v", in, err)
		}
	}

	invalid := []struct {
		name string
		in   string
	}{
		{"members-below-2", `{"bench":"adaptec1","portfolio":true,"pf_members":1}`},
		{"members-negative", `{"bench":"adaptec1","portfolio":true,"pf_members":-4}`},
		{"rounds-below-1", `{"bench":"adaptec1","portfolio":true,"pf_rounds":-1}`},
		{"cull-at-1", `{"bench":"adaptec1","portfolio":true,"pf_cull_fraction":1}`},
		{"cull-above-1", `{"bench":"adaptec1","portfolio":true,"pf_cull_fraction":1.5}`},
		{"cull-negative", `{"bench":"adaptec1","portfolio":true,"pf_cull_fraction":-0.25}`},
	}
	for _, tc := range invalid {
		t.Run(tc.name, func(t *testing.T) {
			var s JobSpec
			if err := json.Unmarshal([]byte(tc.in), &s); err != nil {
				t.Fatalf("decode: %v", err)
			}
			err := s.Validate()
			if err == nil {
				t.Fatalf("invalid portfolio spec accepted: %s", tc.in)
			}
			var pe *complx.PlaceError
			if !errors.As(err, &pe) || pe.Stage != "options" {
				t.Fatalf("want *PlaceError stage options, got %T %v", err, err)
			}
		})
	}

	// Structural conflicts are rejected too (plain errors, pre-facade).
	conflicts := []string{
		`{"bench":"adaptec1","portfolio":true,"multilevel":true}`,
		`{"bench":"adaptec1","algorithm":"nlp","portfolio":true}`,
	}
	for _, in := range conflicts {
		var s JobSpec
		if err := json.Unmarshal([]byte(in), &s); err != nil {
			t.Fatalf("decode %s: %v", in, err)
		}
		if err := s.Validate(); err == nil {
			t.Errorf("conflicting spec %s accepted", in)
		}
	}
}
