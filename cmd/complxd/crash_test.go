package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"complx"
	"complx/internal/chkpt"
)

// startDaemon launches the built complxd binary on an ephemeral port and
// returns the base URL once the listen line appears.
func startDaemon(t *testing.T, bin, dataDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-workers", "1",
		"-checkpoint-interval", "1",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				addrc <- fields[0]
			}
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("daemon did not report its listen address within 30s")
		return nil, ""
	}
}

func postJob(t *testing.T, base string, spec JobSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j.ID
}

func fetchJob(t *testing.T, base, id string) (*Job, error) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, err
	}
	return &j, nil
}

// TestDaemonSIGKILLRestart is the durability drill: a daemon with jobs
// queued and in flight is SIGKILLed (no shutdown handler runs), restarted
// on the same data directory, and every job must still complete — the
// interrupted one resuming from its checkpoint at the same HPWL an
// uninterrupted run produces.
func TestDaemonSIGKILLRestart(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX-only")
	}
	if testing.Short() {
		t.Skip("subprocess crash drill skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "complxd-under-test")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building complxd: %v\n%s", err, out)
	}

	// The victim job: bigblue3 runs a couple of seconds at ~100ms per
	// iteration, so a kill shortly after the first snapshot lands mid-run.
	victim := JobSpec{Bench: "bigblue3", SkipDetailed: true, Threads: 2}
	// Two quick jobs behind it on the single worker: queued at kill time.
	queuedA := testSpec(900, 1, 0)
	queuedB := testSpec(901, 2, 0)

	// Uninterrupted references.
	refVictim := serialResult(t, victim)
	refA := serialResult(t, queuedA)
	refB := serialResult(t, queuedB)

	dataDir := t.TempDir()
	cmd, base := startDaemon(t, bin, dataDir)
	victimID := postJob(t, base, victim)
	idA := postJob(t, base, queuedA)
	idB := postJob(t, base, queuedB)

	// Wait for the victim's first checkpoint, let a few more land, then
	// SIGKILL: no graceful path runs, exactly like a crash or OOM kill.
	ckptFile := filepath.Join(dataDir, "jobs", victimID, "ckpt", chkpt.FileName)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if _, err := os.Stat(ckptFile); err == nil {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("victim job produced no checkpoint within 2 minutes")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond)
	_ = cmd.Process.Kill() // SIGKILL
	_ = cmd.Wait()

	// Restart on the same data directory: the queue must recover, the
	// in-flight job resume, and everything run to completion.
	cmd2, base2 := startDaemon(t, bin, dataDir)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()

	waitFinal := func(id string) *Job {
		deadline := time.Now().Add(4 * time.Minute)
		for {
			j, err := fetchJob(t, base2, id)
			if err == nil && j.State.Terminal() {
				return j
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s did not finish after restart", id)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	jv := waitFinal(victimID)
	if jv.State != StateDone {
		t.Fatalf("victim job: state %s, error %q", jv.State, jv.Error)
	}
	if jv.Attempts < 2 {
		t.Errorf("victim job ran %d attempt(s), want >= 2 (killed then resumed)", jv.Attempts)
	}
	if !jv.Result.Resumed {
		t.Errorf("victim job did not resume from its checkpoint")
	}
	if jv.Result.HPWL != refVictim.HPWL {
		t.Errorf("victim job HPWL %v != uninterrupted %v — resume is not bitwise",
			jv.Result.HPWL, refVictim.HPWL)
	}
	for _, c := range []struct {
		id  string
		ref *complx.Result
	}{{idA, refA}, {idB, refB}} {
		j := waitFinal(c.id)
		if j.State != StateDone {
			t.Fatalf("queued job %s: state %s, error %q", c.id, j.State, j.Error)
		}
		if j.Result.HPWL != c.ref.HPWL {
			t.Errorf("queued job %s HPWL %v != serial %v", c.id, j.Result.HPWL, c.ref.HPWL)
		}
	}
}
