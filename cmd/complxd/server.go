package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"complx"
	"complx/internal/faultinject"
	"complx/internal/perr"
)

// server is the HTTP surface of the daemon:
//
//	POST /jobs               submit a JobSpec, returns the queued record (201)
//	GET  /jobs               list all job records
//	GET  /jobs/{id}          one job record
//	POST /jobs/{id}/cancel   cancel a queued or running job
//	GET  /jobs/{id}/result   the finished job's result (409 while unfinished)
//	GET  /jobs/{id}/events   SSE per-iteration progress stream
//	GET  /obs/{id}/...       the job's own observability surface (hub route)
//	GET  /metrics            daemon metrics + per-job metrics, job="<id>" labels
//	GET  /status             scheduler counts + per-job live status
//	GET  /healthz            liveness probe (200 as long as the process serves)
//	GET  /readyz             readiness probe (503 the moment a drain begins)
//
// Errors are structured JSON: {"error": {"stage", "message",
// "retry_after_seconds"}} — see errors.go for the mapping.
type server struct {
	sched    *scheduler
	hub      *complx.ObsHub
	cfg      config
	draining *atomic.Bool // set by main before the HTTP drain starts
	start    time.Time
}

func newServer(sched *scheduler, hub *complx.ObsHub, cfg config, draining *atomic.Bool) *server {
	if draining == nil {
		draining = &atomic.Bool{}
	}
	return &server{sched: sched, hub: hub, cfg: cfg, draining: draining, start: time.Now()}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.Handle("/obs/", http.StripPrefix("/obs", s.hub.Handler()))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Daemon-level series first (unlabeled), then the per-job series the
		// hub aggregates under job="<id>" labels.
		s.sched.dobs.Metrics().WritePrometheus(w) //nolint:errcheck // best-effort over HTTP
		s.hub.WritePrometheus(w)                  //nolint:errcheck // best-effort over HTTP
	})
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

// handleReady is the readiness probe: it flips to 503 the moment a drain
// begins, so load balancers stop routing new submissions while in-flight
// requests finish within the -drain-timeout window.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, &apiError{
			code:       http.StatusServiceUnavailable,
			stage:      perr.StageAdmission,
			retryAfter: s.cfg.retryAfter,
			err:        errors.New("draining"),
		})
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.cfg.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, &apiError{
				code:  http.StatusRequestEntityTooLarge,
				stage: perr.StageAdmission,
				err:   fmt.Errorf("request body exceeds the %d-byte limit", mbe.Limit),
			})
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	j, err := s.sched.Submit(spec)
	if err != nil {
		// Admission rejections carry their own 503/429 + Retry-After via
		// *apiError; anything else is a spec validation error.
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, j)
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.List())
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.sched.Get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.sched.Cancel(r.PathValue("id")); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.sched.Get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %s", r.PathValue("id")))
		return
	}
	switch j.State {
	case StateDone, StateCancelled:
		if j.Result == nil {
			writeError(w, http.StatusConflict, fmt.Errorf("job %s %s without result", j.ID, j.State))
			return
		}
		writeJSON(w, http.StatusOK, j.Result)
	case StateFailed, StateQuarantined:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s %s: %s", j.ID, j.State, j.Error))
	default:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s", j.ID, j.State))
	}
}

// handleEvents streams per-iteration progress as Server-Sent Events: one
// `iter` event per recorded global-placement iteration (JSON IterStats
// payload), then a final `done` event with the job record. The response is
// flushed immediately on connect (a `: connected` comment), and while the
// job is quiet the stream carries `: keepalive` comment frames every
// cfg.sseKeepalive so intermediaries do not drop it. Subscribing to a
// queued job waits for it to start; subscribing to a finished job replays
// nothing and closes with `done` immediately.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ri := s.sched.Runtime(id)
	if ri == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %s", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Flush headers plus a comment frame immediately, so clients (and
	// buffering proxies) see the stream is live before the first iteration.
	fmt.Fprintf(w, ": connected %s\n\n", id)
	fl.Flush()

	var keepalive <-chan time.Time
	if s.cfg.sseKeepalive > 0 {
		t := time.NewTicker(s.cfg.sseKeepalive)
		defer t.Stop()
		keepalive = t.C
	}

	next := 0
	for {
		samples, final, changed := ri.snapshot(next)
		if len(samples) > 0 {
			if err := faultinject.FireErr(faultinject.SSEWrite, id); err != nil {
				return // injected stream failure: drop the subscriber
			}
		}
		for _, sm := range samples {
			data, err := json.Marshal(sm)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: iter\ndata: %s\n\n", data)
		}
		next += len(samples)
		if len(samples) > 0 {
			fl.Flush()
		}
		if final {
			data, _ := json.Marshal(s.sched.Get(id))
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
			fl.Flush()
			return
		}
		select {
		case <-changed:
		case <-keepalive:
			if err := faultinject.FireErr(faultinject.SSEWrite, id); err != nil {
				return
			}
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// statusView is the /status payload. The per-job statuses include each
// run's spans_dropped count, so truncated traces are visible fleet-wide.
type statusView struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	Queued        int     `json:"queued"`
	QueueCapacity int     `json:"queue_capacity"`
	Running       int     `json:"running"`
	Quarantined   int     `json:"quarantined"`
	IntakePaused  bool    `json:"intake_paused"`
	Draining      bool    `json:"draining"`
	Goroutines    int     `json:"goroutines"`
	HeapAllocMB   float64 `json:"heap_alloc_mb"`

	Jobs map[string]complx.RunStatus `json:"jobs"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	queued, running := s.sched.Counts()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeJSON(w, http.StatusOK, statusView{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.sched.cfg.workers,
		Queued:        queued,
		QueueCapacity: s.sched.cfg.maxQueue,
		Running:       running,
		Quarantined:   s.sched.Quarantined(),
		IntakePaused:  s.sched.adm.paused.Load(),
		Draining:      s.draining.Load(),
		Goroutines:    runtime.NumGoroutine(),
		HeapAllocMB:   float64(ms.HeapAlloc) / (1 << 20),
		Jobs:          s.hub.Statuses(),
	})
}
