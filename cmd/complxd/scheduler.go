package main

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"complx"
	"complx/internal/faultinject"
	"complx/internal/obs"
	"complx/internal/perr"
	"complx/internal/resilience"
)

// jobHeap orders queued jobs by priority (higher first), then submission
// sequence (FIFO within a priority).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].Spec.Priority != h[b].Spec.Priority {
		return h[a].Spec.Priority > h[b].Spec.Priority
	}
	return h[a].Seq < h[b].Seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any     { old := *h; n := len(old); j := old[n-1]; *h = old[:n-1]; return j }

// Cancellation causes. Each way a running job's context can be cancelled
// carries its own cause, so runJob can map the outcome to the right
// terminal state: a user cancel ends cancelled, a drain leaves the job
// re-queued and resumable, and governance causes (deadline, watchdog —
// built per job so the message can carry the limits) end failed.
var (
	errUserCancel = errors.New("cancelled by request")
	errShutdown   = errors.New("server shutting down")
)

// runtimeInfo is the in-memory side of a job: live iteration samples for
// SSE subscribers and, while running, the cause-carrying cancel hook.
type runtimeInfo struct {
	mu      sync.Mutex
	samples []complx.IterStats
	changed chan struct{} // closed-and-replaced on every append / state change
	cancel  context.CancelCauseFunc
	final   bool
}

func newRuntimeInfo() *runtimeInfo {
	return &runtimeInfo{changed: make(chan struct{})}
}

// appendSample records one iteration and wakes SSE subscribers.
func (ri *runtimeInfo) appendSample(s complx.IterStats) {
	ri.mu.Lock()
	ri.samples = append(ri.samples, s)
	ch := ri.changed
	ri.changed = make(chan struct{})
	ri.mu.Unlock()
	close(ch)
}

// finish marks the stream complete and wakes subscribers one last time.
func (ri *runtimeInfo) finish() {
	ri.mu.Lock()
	ri.final = true
	ch := ri.changed
	ri.changed = make(chan struct{})
	ri.mu.Unlock()
	close(ch)
}

// cancelCause invokes the job's cancel hook with the given cause, if the
// job is currently running.
func (ri *runtimeInfo) cancelCause(cause error) {
	ri.mu.Lock()
	cancel := ri.cancel
	ri.mu.Unlock()
	if cancel != nil {
		cancel(cause)
	}
}

// snapshot returns the samples recorded so far, whether the stream is
// complete, and a channel that closes on the next change.
func (ri *runtimeInfo) snapshot(from int) ([]complx.IterStats, bool, <-chan struct{}) {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	if from > len(ri.samples) {
		from = len(ri.samples)
	}
	out := append([]complx.IterStats(nil), ri.samples[from:]...)
	return out, ri.final, ri.changed
}

// scheduler owns the queue, the worker pool, the per-job runtime state and
// the hardening machinery around them: admission control, the memory
// watermark monitor, the progress watchdog, the crash-loop quarantine
// breaker and the terminal-job retention janitor (DESIGN.md §15).
type scheduler struct {
	store *store
	hub   *complx.ObsHub
	cfg   config
	adm   *admission
	// dobs is the daemon-level observer: process-wide counters and gauges
	// (queue depth, quarantines, admission rejections, watchdog activity)
	// served unlabeled on /metrics next to the hub's per-job series.
	dobs *complx.Observer

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobHeap
	jobs     map[string]*Job         // every job this server knows, by ID
	runtimes map[string]*runtimeInfo // live SSE/cancel state, by ID
	running  int
	closed   bool

	done chan struct{} // closed on Stop; ends the monitor goroutines
	wg   sync.WaitGroup
}

func newScheduler(st *store, hub *complx.ObsHub, cfg config) *scheduler {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	s := &scheduler{
		store:    st,
		hub:      hub,
		cfg:      cfg,
		adm:      newAdmission(cfg),
		dobs:     complx.NewObserver(),
		jobs:     map[string]*Job{},
		runtimes: map[string]*runtimeInfo{},
		done:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// queueGaugeLocked publishes the live queue depth; callers hold s.mu.
func (s *scheduler) queueGaugeLocked() {
	s.dobs.SetGauge(obs.MetricQueueDepth, float64(len(s.queue)))
}

// quarantineLocked parks j with a stage-"quarantine" error; callers hold
// s.mu and must persist the returned snapshot after unlocking.
func (s *scheduler) quarantineLocked(j *Job, reason string) Job {
	now := time.Now().UTC()
	j.State = StateQuarantined
	j.Finished = &now
	j.Error = perr.New(perr.StageQuarantine,
		"crash-loop breaker: %s after %d interrupted attempts (cap %d)",
		reason, j.Attempts, s.cfg.maxAttempts).Error()
	s.dobs.AddCount(obs.MetricJobsQuarantined, 1)
	return *j
}

// Recover loads every persisted job and re-queues the unfinished ones. A
// job that was running when the previous server died goes back to queued —
// its checkpoint directory lets the placement resume mid-flight — unless
// its attempts already reached the quarantine cap: then the crash-loop
// breaker quarantines it instead of letting it take this server down too.
// Unreadable job records are skipped with a logged warning and counted in
// complx_recover_corrupt_total, never fatal to startup.
func (s *scheduler) Recover() error {
	jobs, err := s.store.LoadAll()
	if err != nil {
		return err
	}
	s.dobs.AddCount(obs.MetricRecoverCorrupt, float64(s.store.CorruptSkipped()))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range jobs {
		s.jobs[j.ID] = j
		switch j.State {
		case StateQueued:
			heap.Push(&s.queue, j)
		case StateRunning:
			if s.cfg.maxAttempts > 0 && j.Attempts >= s.cfg.maxAttempts {
				cp := s.quarantineLocked(j, "interrupted again while running")
				if err := s.store.Save(&cp); err != nil {
					log.Printf("job %s: persist quarantined state: %v", cp.ID, err)
				}
				log.Printf("quarantined job %s: %s", j.ID, j.Error)
				continue
			}
			j.State = StateQueued
			if err := s.store.Save(j); err != nil {
				return err
			}
			heap.Push(&s.queue, j)
			log.Printf("recovered in-flight job %s (attempt %d); will resume from checkpoint",
				j.ID, j.Attempts)
		}
	}
	s.queueGaugeLocked()
	s.cond.Broadcast()
	return nil
}

// Start launches the worker pool and, when configured, the memory-watermark
// monitor and the retention janitor.
func (s *scheduler) Start() {
	for i := 0; i < s.cfg.workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.workerLoop()
		}()
	}
	if s.cfg.memPoll > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.memMonitor()
		}()
	}
	if s.cfg.retain > 0 && s.cfg.gcEvery > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.janitor()
		}()
	}
}

// Stop drains the pool: running jobs are cancelled cooperatively with the
// shutdown cause — so they are re-queued resumable, not marked terminal —
// and the workers and monitors exit.
func (s *scheduler) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.done)
	rts := make([]*runtimeInfo, 0, len(s.runtimes))
	for _, ri := range s.runtimes {
		rts = append(rts, ri)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, ri := range rts {
		ri.cancelCause(errShutdown)
	}
	s.wg.Wait()
}

// Submit validates, admits, persists and enqueues a new job.
func (s *scheduler) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Admission runs under the scheduler lock so the depth check cannot
	// race concurrent submissions past the cap.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, s.adm.reject(503, "server draining")
	}
	if err := s.adm.admit(len(s.queue)); err != nil {
		s.mu.Unlock()
		s.dobs.AddCount(obs.MetricAdmissionRejected, 1)
		return nil, err
	}
	s.mu.Unlock()

	j, err := s.store.NewJob(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	heap.Push(&s.queue, j)
	s.queueGaugeLocked()
	cp := *j
	s.cond.Signal()
	s.mu.Unlock()
	return &cp, nil
}

// update mutates a shared job record under the scheduler lock, persists a
// snapshot and returns it. Handlers only ever see snapshots, so workers may
// keep mutating the canonical record without racing the JSON encoders.
func (s *scheduler) update(j *Job, fn func(*Job)) *Job {
	s.mu.Lock()
	fn(j)
	cp := *j
	s.mu.Unlock()
	if err := s.store.Save(&cp); err != nil {
		log.Printf("job %s: persist %s state: %v", cp.ID, cp.State, err)
	}
	return &cp
}

// Get returns a copy of the job record, or nil.
func (s *scheduler) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	cp := *j
	return &cp
}

// List returns copies of all known jobs in submission order.
func (s *scheduler) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		cp := *j
		out = append(out, &cp)
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Seq < out[k-1].Seq; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Runtime returns the job's live runtime info, creating it if needed (so a
// subscriber can attach before the job starts).
func (s *scheduler) Runtime(id string) *runtimeInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return nil
	}
	ri, ok := s.runtimes[id]
	if !ok {
		ri = newRuntimeInfo()
		s.runtimes[id] = ri
		if j := s.jobs[id]; j.State.Terminal() {
			ri.final = true
		}
	}
	return ri
}

// Cancel cancels a queued or running job. Cancelling a queued job is
// immediate; a running job stops cooperatively at the next solver check and
// keeps its best placement.
func (s *scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return &apiError{code: 404, err: fmt.Errorf("unknown job %s", id)}
	}
	switch j.State {
	case StateQueued:
		j.State = StateCancelled
		now := time.Now().UTC()
		j.Finished = &now
		cp := *j
		ri := s.runtimes[id]
		s.mu.Unlock()
		err := s.store.Save(&cp)
		if ri != nil {
			ri.finish()
		}
		return err
	case StateRunning:
		ri := s.runtimes[id]
		s.mu.Unlock()
		if ri != nil {
			ri.cancelCause(errUserCancel)
		}
		return nil
	default:
		s.mu.Unlock()
		return &apiError{code: 409, err: fmt.Errorf("job %s already %s", id, j.State)}
	}
}

// Counts reports queue depth and running jobs for /status.
func (s *scheduler) Counts() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.running
}

// Quarantined counts quarantined jobs for /status.
func (s *scheduler) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.State == StateQuarantined {
			n++
		}
	}
	return n
}

// workerLoop pops jobs until the scheduler closes.
func (s *scheduler) workerLoop() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		s.queueGaugeLocked()
		if j.State != StateQueued {
			// Cancelled (or shed) while queued; the heap entry is stale.
			s.mu.Unlock()
			continue
		}
		if err := faultinject.FireErr(faultinject.WorkerStart, j.ID); err != nil {
			// Injected dispatch failure: re-queue without consuming an
			// attempt (rule budgets bound the number of firings).
			heap.Push(&s.queue, j)
			s.queueGaugeLocked()
			s.mu.Unlock()
			continue
		}
		if s.cfg.maxAttempts > 0 && j.Attempts >= s.cfg.maxAttempts {
			// Defensive arm of the crash-loop breaker: never dispatch past
			// the attempt cap, however the job got back into the queue.
			cp := s.quarantineLocked(j, "attempt cap reached at dispatch")
			s.mu.Unlock()
			if err := s.store.Save(&cp); err != nil {
				log.Printf("job %s: persist quarantined state: %v", cp.ID, err)
			}
			if ri := s.Runtime(cp.ID); ri != nil {
				ri.finish()
			}
			continue
		}
		now := time.Now().UTC()
		j.State = StateRunning
		j.Started = &now
		j.Attempts++
		s.running++
		cp := *j
		ri, ok := s.runtimes[j.ID]
		if !ok {
			ri = newRuntimeInfo()
			s.runtimes[j.ID] = ri
		}
		s.mu.Unlock()
		if err := s.store.Save(&cp); err != nil {
			log.Printf("job %s: persist running state: %v", j.ID, err)
		}

		s.runJob(j, ri)

		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}
}

// runJob executes one placement under the job's governance envelope —
// deadline, progress watchdog, panic isolation — and persists the outcome.
func (s *scheduler) runJob(j *Job, ri *runtimeInfo) {
	base, cancel := context.WithCancelCause(context.Background())
	ctx := context.Context(base)
	defer cancel(nil)

	// Per-job deadline, enforced through the same cancellable context the
	// solvers already observe. The cause carries the stage-"deadline"
	// error verbatim into the job record.
	var deadlineErr error
	// Deadlines past the Duration range (~292 years) mean "unbounded", not
	// an instant overflow-to-negative timeout.
	if d := j.Spec.DeadlineSeconds; d > 0 && d < float64(math.MaxInt64)/float64(time.Second) {
		deadlineErr = perr.New(perr.StageDeadline, "job deadline (%gs) exceeded", d)
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeoutCause(ctx, time.Duration(d*float64(time.Second)), deadlineErr)
		defer tcancel()
	}

	// Progress watchdog: fed by the engine's per-iteration callback; a
	// stall cancels the run with a stage-"watchdog" cause.
	watchdogErr := perr.New(perr.StageWatchdog,
		"no progress for %s; job cancelled by the watchdog", s.cfg.watchdogStall)
	wd := resilience.NewWatchdog(s.cfg.watchdogStall, func() {
		s.dobs.AddCount(obs.MetricWatchdogCancels, 1)
		cancel(watchdogErr)
	})
	if wd != nil {
		g := s.dobs.Gauge(obs.MetricWatchdogActive)
		g.Set(g.Value() + 1)
		defer func() { g.Set(g.Value() - 1) }()
	}
	defer wd.Stop()
	onIter := func(st complx.IterStats) {
		wd.Touch()
		ri.appendSample(st)
	}

	ri.mu.Lock()
	ri.cancel = cancel
	ri.mu.Unlock()
	defer func() {
		ri.mu.Lock()
		ri.cancel = nil
		ri.mu.Unlock()
	}()

	observer := complx.NewObserver()
	s.hub.Register(j.ID, observer)

	res, err := s.safePlacement(ctx, j, observer, onIter)
	cause := context.Cause(ctx)

	if errors.Is(cause, errShutdown) && err == nil && (res == nil || res.Cancelled) {
		// Graceful drain: leave the job resumable instead of terminal. The
		// attempt is handed back so only crash-interrupted dispatches count
		// toward the quarantine cap — a daemon restarted gracefully N times
		// must never quarantine an innocent long job.
		s.update(j, func(j *Job) {
			j.State = StateQueued
			j.Started = nil
			j.Attempts--
		})
		ri.finish()
		log.Printf("job %s re-queued by drain; will resume from checkpoint", j.ID)
		return
	}

	s.update(j, func(j *Job) {
		now := time.Now().UTC()
		j.Finished = &now
		switch {
		case cause != nil && (cause == deadlineErr || cause == watchdogErr):
			// Governance cut the run short: the job failed, but the
			// best-so-far placement (when one exists) stays attached.
			j.State = StateFailed
			j.Error = cause.Error()
			if res != nil {
				j.Result = summarize(res)
			}
		case res != nil && res.Cancelled:
			j.State = StateCancelled
			j.Result = summarize(res)
			if err != nil {
				j.Error = err.Error()
			}
		case err != nil:
			j.State = StateFailed
			j.Error = err.Error()
		default:
			j.State = StateDone
			j.Result = summarize(res)
		}
	})
	ri.finish()
}

// safePlacement isolates worker panics: a panicking job fails with a
// stage-"panic" *PlaceError carrying the stack, instead of taking the
// daemon (and every other tenant's job) down with it. Panics on auxiliary
// kernel goroutines are out of scope — those indicate bugs the fuzzers and
// the panic-free pipeline contract (DESIGN.md §7) exist to prevent.
func (s *scheduler) safePlacement(ctx context.Context, j *Job,
	observer *complx.Observer, onIter func(complx.IterStats)) (res *complx.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.dobs.AddCount(obs.MetricJobPanics, 1)
			res, err = nil, perr.New(perr.StagePanic, "worker panic: %v\n%s", r, debug.Stack())
			log.Printf("job %s: %v", j.ID, err)
		}
	}()
	return runPlacement(ctx, j, s.store.CheckpointDir(j.ID), s.cfg.ckptEvery, observer, onIter)
}

// memMonitor samples the heap at cfg.memPoll. While it exceeds the
// watermark, intake is paused (submissions get 503) and one lowest-priority
// queued job is shed per sample, so the daemon degrades before the
// kernel's OOM killer makes the decision for it.
func (s *scheduler) memMonitor() {
	t := time.NewTicker(s.cfg.memPoll)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		}
		wm := s.adm.watermark.Load()
		if wm == 0 {
			if s.adm.paused.Swap(false) {
				s.dobs.SetGauge(obs.MetricIntakePaused, 0)
			}
			continue
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		over := ms.HeapAlloc > wm
		if s.adm.paused.Swap(over) != over {
			s.dobs.SetGauge(obs.MetricIntakePaused, b2f(over))
			if over {
				log.Printf("complxd: heap %d MiB above watermark %d MiB; intake paused",
					ms.HeapAlloc>>20, wm>>20)
			} else {
				log.Printf("complxd: heap back under watermark; intake resumed")
			}
		}
		if over {
			s.shedLowestPriority(ms.HeapAlloc, wm)
		}
	}
}

// shedLowestPriority fails the least important queued job under memory
// pressure (lowest priority, newest submission breaking ties). Running
// jobs are never shed — their checkpoints make cancellation wasteful and
// their memory is already committed.
func (s *scheduler) shedLowestPriority(heapAlloc, wm uint64) {
	s.mu.Lock()
	victim := -1
	for i, j := range s.queue {
		if victim < 0 {
			victim = i
			continue
		}
		v := s.queue[victim]
		if j.Spec.Priority < v.Spec.Priority ||
			(j.Spec.Priority == v.Spec.Priority && j.Seq > v.Seq) {
			victim = i
		}
	}
	if victim < 0 {
		s.mu.Unlock()
		return
	}
	j := heap.Remove(&s.queue, victim).(*Job)
	now := time.Now().UTC()
	j.State = StateFailed
	j.Finished = &now
	j.Error = perr.New(perr.StageAdmission,
		"shed while queued: heap %d MiB above the %d MiB watermark", heapAlloc>>20, wm>>20).Error()
	cp := *j
	ri := s.runtimes[j.ID]
	s.queueGaugeLocked()
	s.dobs.AddCount(obs.MetricJobsShed, 1)
	s.mu.Unlock()
	if err := s.store.Save(&cp); err != nil {
		log.Printf("job %s: persist shed state: %v", cp.ID, err)
	}
	if ri != nil {
		ri.finish()
	}
	log.Printf("shed queued job %s (priority %d) under memory pressure", cp.ID, cp.Spec.Priority)
}

// janitor removes terminal jobs' directories cfg.retain after they
// finished, bounding the store's disk (and the daemon's per-job state)
// under sustained load.
func (s *scheduler) janitor() {
	t := time.NewTicker(s.cfg.gcEvery)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.gcOnce(time.Now().Add(-s.cfg.retain))
		}
	}
}

// gcOnce collects every terminal job finished before cutoff.
func (s *scheduler) gcOnce(cutoff time.Time) {
	s.mu.Lock()
	var victims []*Job
	for id, j := range s.jobs {
		if j.State.Terminal() && j.Finished != nil && j.Finished.Before(cutoff) {
			victims = append(victims, j)
			delete(s.jobs, id)
			delete(s.runtimes, id)
		}
	}
	s.mu.Unlock()
	for _, j := range victims {
		if err := os.RemoveAll(s.store.jobDir(j.ID)); err != nil {
			log.Printf("job %s: gc: %v", j.ID, err)
		}
		s.hub.Unregister(j.ID)
		s.dobs.AddCount(obs.MetricJobsGCed, 1)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// runPlacement builds the netlist and runs the flow for one job.
func runPlacement(ctx context.Context, j *Job, ckptDir string, ckptEach int,
	observer *complx.Observer, onIter func(complx.IterStats)) (*complx.Result, error) {
	nl, target, err := buildNetlist(j.Spec)
	if err != nil {
		return nil, err
	}
	alg := complx.AlgComPLx
	if j.Spec.Algorithm != "" {
		if alg, err = complx.ParseAlgorithm(j.Spec.Algorithm); err != nil {
			return nil, err
		}
	}
	if j.Spec.TargetDensity > 0 {
		target = j.Spec.TargetDensity
	}
	opt := complx.Options{
		Algorithm:     alg,
		TargetDensity: target,
		MaxIterations: j.Spec.MaxIterations,
		Precond:       j.Spec.Precond,
		SkipLegalize:  j.Spec.SkipLegalize,
		SkipDetailed:  j.Spec.SkipDetailed,
		Multilevel: complx.MultilevelOptions{
			Enabled:     j.Spec.Multilevel,
			TargetCells: j.Spec.MLTargetCells,
			MaxLevels:   j.Spec.MLMaxLevels,
			RefineIters: j.Spec.MLRefineIters,
		},
		Portfolio:   j.Spec.portfolioOptions(),
		Threads:     j.Spec.Threads,
		Observer:    observer,
		OnIteration: onIter,
		Checkpoint: complx.CheckpointOptions{
			Dir:      ckptDir,
			Interval: ckptEach,
			Resume:   true, // a fresh job has no snapshot; a re-queued one resumes
		},
	}
	res, err := complx.PlaceContext(ctx, nl, opt)
	if res != nil && res.Cancelled {
		// Cooperative cancellation still returns a usable placement; report
		// it as cancelled, not failed.
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return res, err
		}
		return res, nil
	}
	return res, err
}

// buildNetlist materializes the job's input design.
func buildNetlist(spec JobSpec) (*complx.Netlist, float64, error) {
	var bs complx.BenchSpec
	if spec.Gen != nil {
		bs = *spec.Gen
	} else {
		var ok bool
		bs, ok = complx.BenchmarkByName(spec.Bench)
		if !ok {
			return nil, 0, fmt.Errorf("unknown benchmark %q", spec.Bench)
		}
		if spec.Scale != 0 && spec.Scale != 1.0 {
			bs = complx.ScaleBenchmark(bs, spec.Scale)
		}
	}
	target := bs.TargetDensity
	nl, err := complx.Generate(bs)
	if err != nil {
		return nil, 0, err
	}
	return nl, target, nil
}

func summarize(res *complx.Result) *JobResult {
	if res == nil {
		return nil
	}
	jr := &JobResult{
		HPWL:             res.HPWL,
		ScaledHPWL:       res.ScaledHPWL,
		OverflowPercent:  res.OverflowPercent,
		GlobalIterations: res.GlobalIterations,
		Converged:        res.Converged,
		Legalized:        res.Legalized,
		Detailed:         res.Detailed,
		Resumed:          res.Resumed,
		Precond:          res.Precond,
		CGIterations:     res.CGIterations,
		TotalSeconds:     res.Total.Seconds(),
	}
	if pf := res.Portfolio; pf != nil {
		jr.PortfolioWinner = &pf.Winner
		jr.PortfolioVariant = pf.WinnerVariant
		jr.PortfolioCulls = pf.Culls
		jr.PortfolioReseeds = pf.Reseeds
	}
	return jr
}
