package main

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"complx"
)

// jobHeap orders queued jobs by priority (higher first), then submission
// sequence (FIFO within a priority).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].Spec.Priority != h[b].Spec.Priority {
		return h[a].Spec.Priority > h[b].Spec.Priority
	}
	return h[a].Seq < h[b].Seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any     { old := *h; n := len(old); j := old[n-1]; *h = old[:n-1]; return j }

// runtimeInfo is the in-memory side of a job: live iteration samples for
// SSE subscribers and, while running, the cancel hook.
type runtimeInfo struct {
	mu      sync.Mutex
	samples []complx.IterStats
	changed chan struct{} // closed-and-replaced on every append / state change
	cancel  context.CancelFunc
	final   bool
}

func newRuntimeInfo() *runtimeInfo {
	return &runtimeInfo{changed: make(chan struct{})}
}

// appendSample records one iteration and wakes SSE subscribers.
func (ri *runtimeInfo) appendSample(s complx.IterStats) {
	ri.mu.Lock()
	ri.samples = append(ri.samples, s)
	ch := ri.changed
	ri.changed = make(chan struct{})
	ri.mu.Unlock()
	close(ch)
}

// finish marks the stream complete and wakes subscribers one last time.
func (ri *runtimeInfo) finish() {
	ri.mu.Lock()
	ri.final = true
	ch := ri.changed
	ri.changed = make(chan struct{})
	ri.mu.Unlock()
	close(ch)
}

// snapshot returns the samples recorded so far, whether the stream is
// complete, and a channel that closes on the next change.
func (ri *runtimeInfo) snapshot(from int) ([]complx.IterStats, bool, <-chan struct{}) {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	if from > len(ri.samples) {
		from = len(ri.samples)
	}
	out := append([]complx.IterStats(nil), ri.samples[from:]...)
	return out, ri.final, ri.changed
}

// scheduler owns the queue, the worker pool and the per-job runtime state.
type scheduler struct {
	store    *store
	hub      *complx.ObsHub
	workers  int
	ckptEach int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobHeap
	jobs     map[string]*Job         // every job this server knows, by ID
	runtimes map[string]*runtimeInfo // live SSE/cancel state, by ID
	running  int
	closed   bool

	wg sync.WaitGroup
}

func newScheduler(st *store, hub *complx.ObsHub, workers, ckptEach int) *scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &scheduler{
		store:    st,
		hub:      hub,
		workers:  workers,
		ckptEach: ckptEach,
		jobs:     map[string]*Job{},
		runtimes: map[string]*runtimeInfo{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Recover loads every persisted job and re-queues the unfinished ones. A
// job that was running when the previous server died goes back to queued:
// its checkpoint directory lets the placement resume mid-flight.
func (s *scheduler) Recover() error {
	jobs, err := s.store.LoadAll()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range jobs {
		s.jobs[j.ID] = j
		switch j.State {
		case StateQueued:
			heap.Push(&s.queue, j)
		case StateRunning:
			j.State = StateQueued
			if err := s.store.Save(j); err != nil {
				return err
			}
			heap.Push(&s.queue, j)
			log.Printf("recovered in-flight job %s; will resume from checkpoint", j.ID)
		}
	}
	s.cond.Broadcast()
	return nil
}

// Start launches the worker pool.
func (s *scheduler) Start() {
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.workerLoop()
		}()
	}
}

// Stop drains the pool: running jobs are cancelled cooperatively (their
// checkpoints make the interruption recoverable) and the workers exit.
func (s *scheduler) Stop() {
	s.mu.Lock()
	s.closed = true
	for _, ri := range s.runtimes {
		ri.mu.Lock()
		if ri.cancel != nil {
			ri.cancel()
		}
		ri.mu.Unlock()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Submit validates, persists and enqueues a new job.
func (s *scheduler) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	j, err := s.store.NewJob(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	heap.Push(&s.queue, j)
	cp := *j
	s.cond.Signal()
	s.mu.Unlock()
	return &cp, nil
}

// update mutates a shared job record under the scheduler lock, persists a
// snapshot and returns it. Handlers only ever see snapshots, so workers may
// keep mutating the canonical record without racing the JSON encoders.
func (s *scheduler) update(j *Job, fn func(*Job)) *Job {
	s.mu.Lock()
	fn(j)
	cp := *j
	s.mu.Unlock()
	if err := s.store.Save(&cp); err != nil {
		log.Printf("job %s: persist %s state: %v", cp.ID, cp.State, err)
	}
	return &cp
}

// Get returns a copy of the job record, or nil.
func (s *scheduler) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	cp := *j
	return &cp
}

// List returns copies of all known jobs in submission order.
func (s *scheduler) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		cp := *j
		out = append(out, &cp)
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Seq < out[k-1].Seq; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Runtime returns the job's live runtime info, creating it if needed (so a
// subscriber can attach before the job starts).
func (s *scheduler) Runtime(id string) *runtimeInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return nil
	}
	ri, ok := s.runtimes[id]
	if !ok {
		ri = newRuntimeInfo()
		s.runtimes[id] = ri
		if j := s.jobs[id]; j.State == StateDone || j.State == StateFailed || j.State == StateCancelled {
			ri.final = true
		}
	}
	return ri
}

// Cancel cancels a queued or running job. Cancelling a queued job is
// immediate; a running job stops cooperatively at the next solver check and
// keeps its best placement.
func (s *scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("unknown job %s", id)
	}
	switch j.State {
	case StateQueued:
		j.State = StateCancelled
		now := time.Now().UTC()
		j.Finished = &now
		cp := *j
		ri := s.runtimes[id]
		s.mu.Unlock()
		err := s.store.Save(&cp)
		if ri != nil {
			ri.finish()
		}
		return err
	case StateRunning:
		ri := s.runtimes[id]
		s.mu.Unlock()
		if ri != nil {
			ri.mu.Lock()
			if ri.cancel != nil {
				ri.cancel()
			}
			ri.mu.Unlock()
		}
		return nil
	default:
		s.mu.Unlock()
		return fmt.Errorf("job %s already %s", id, j.State)
	}
}

// Counts reports queue depth and running jobs for /status.
func (s *scheduler) Counts() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.running
}

// workerLoop pops jobs until the scheduler closes.
func (s *scheduler) workerLoop() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		if j.State != StateQueued {
			// Cancelled while queued; the heap entry is stale.
			s.mu.Unlock()
			continue
		}
		now := time.Now().UTC()
		j.State = StateRunning
		j.Started = &now
		j.Attempts++
		s.running++
		cp := *j
		ri, ok := s.runtimes[j.ID]
		if !ok {
			ri = newRuntimeInfo()
			s.runtimes[j.ID] = ri
		}
		s.mu.Unlock()
		if err := s.store.Save(&cp); err != nil {
			log.Printf("job %s: persist running state: %v", j.ID, err)
		}

		s.runJob(j, ri)

		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}
}

// runJob executes one placement and persists the outcome.
func (s *scheduler) runJob(j *Job, ri *runtimeInfo) {
	ctx, cancel := context.WithCancel(context.Background())
	ri.mu.Lock()
	ri.cancel = cancel
	ri.mu.Unlock()
	defer func() {
		ri.mu.Lock()
		ri.cancel = nil
		ri.mu.Unlock()
		cancel()
	}()

	observer := complx.NewObserver()
	s.hub.Register(j.ID, observer)

	res, err := runPlacement(ctx, j, s.store.CheckpointDir(j.ID), s.ckptEach, observer, ri.appendSample)

	s.update(j, func(j *Job) {
		now := time.Now().UTC()
		j.Finished = &now
		switch {
		case res != nil && res.Cancelled:
			j.State = StateCancelled
			j.Result = summarize(res)
			if err != nil {
				j.Error = err.Error()
			}
		case err != nil:
			j.State = StateFailed
			j.Error = err.Error()
		default:
			j.State = StateDone
			j.Result = summarize(res)
		}
	})
	ri.finish()
}

// runPlacement builds the netlist and runs the flow for one job.
func runPlacement(ctx context.Context, j *Job, ckptDir string, ckptEach int,
	observer *complx.Observer, onIter func(complx.IterStats)) (*complx.Result, error) {
	nl, target, err := buildNetlist(j.Spec)
	if err != nil {
		return nil, err
	}
	alg := complx.AlgComPLx
	if j.Spec.Algorithm != "" {
		if alg, err = complx.ParseAlgorithm(j.Spec.Algorithm); err != nil {
			return nil, err
		}
	}
	if j.Spec.TargetDensity > 0 {
		target = j.Spec.TargetDensity
	}
	opt := complx.Options{
		Algorithm:     alg,
		TargetDensity: target,
		MaxIterations: j.Spec.MaxIterations,
		Precond:       j.Spec.Precond,
		SkipLegalize:  j.Spec.SkipLegalize,
		SkipDetailed:  j.Spec.SkipDetailed,
		Multilevel: complx.MultilevelOptions{
			Enabled:     j.Spec.Multilevel,
			TargetCells: j.Spec.MLTargetCells,
			MaxLevels:   j.Spec.MLMaxLevels,
			RefineIters: j.Spec.MLRefineIters,
		},
		Portfolio:   j.Spec.portfolioOptions(),
		Threads:     j.Spec.Threads,
		Observer:    observer,
		OnIteration: onIter,
		Checkpoint: complx.CheckpointOptions{
			Dir:      ckptDir,
			Interval: ckptEach,
			Resume:   true, // a fresh job has no snapshot; a re-queued one resumes
		},
	}
	res, err := complx.PlaceContext(ctx, nl, opt)
	if res != nil && res.Cancelled {
		// Cooperative cancellation still returns a usable placement; report
		// it as cancelled, not failed.
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return res, err
		}
		return res, nil
	}
	return res, err
}

// buildNetlist materializes the job's input design.
func buildNetlist(spec JobSpec) (*complx.Netlist, float64, error) {
	var bs complx.BenchSpec
	if spec.Gen != nil {
		bs = *spec.Gen
	} else {
		var ok bool
		bs, ok = complx.BenchmarkByName(spec.Bench)
		if !ok {
			return nil, 0, fmt.Errorf("unknown benchmark %q", spec.Bench)
		}
		if spec.Scale != 0 && spec.Scale != 1.0 {
			bs = complx.ScaleBenchmark(bs, spec.Scale)
		}
	}
	target := bs.TargetDensity
	nl, err := complx.Generate(bs)
	if err != nil {
		return nil, 0, err
	}
	return nl, target, nil
}

func summarize(res *complx.Result) *JobResult {
	if res == nil {
		return nil
	}
	jr := &JobResult{
		HPWL:             res.HPWL,
		ScaledHPWL:       res.ScaledHPWL,
		OverflowPercent:  res.OverflowPercent,
		GlobalIterations: res.GlobalIterations,
		Converged:        res.Converged,
		Legalized:        res.Legalized,
		Detailed:         res.Detailed,
		Resumed:          res.Resumed,
		Precond:          res.Precond,
		CGIterations:     res.CGIterations,
		TotalSeconds:     res.Total.Seconds(),
	}
	if pf := res.Portfolio; pf != nil {
		jr.PortfolioWinner = &pf.Winner
		jr.PortfolioVariant = pf.WinnerVariant
		jr.PortfolioCulls = pf.Culls
		jr.PortfolioReseeds = pf.Reseeds
	}
	return jr
}
