package main

import (
	"bufio"
	"net/http"
	"strings"
	"testing"
	"time"

	"complx/internal/faultinject"
)

// TestSSEImmediateFlushAndKeepalive pins the slow-job streaming contract:
// the stream flushes a `: connected` comment the moment the subscription is
// accepted — before any iteration exists — and carries `: keepalive`
// comment frames while the job is quiet, so buffering proxies neither delay
// nor drop it. The subscribed job is held queued behind a blocker for the
// whole observation window, then cancelled to close the stream with `done`.
func TestSSEImmediateFlushAndKeepalive(t *testing.T) {
	cfg := testConfig(1)
	cfg.sseKeepalive = 50 * time.Millisecond
	srv, _ := startTestServerCfg(t, t.TempDir(), cfg)

	blocker := submit(t, srv, heavySpec(800, 1, 9))
	waitRunning(t, srv, blocker.ID, time.Minute)
	quiet := submit(t, srv, testSpec(801, 1, 0)) // stays queued: zero events

	resp, err := srv.Client().Get(srv.URL + "/jobs/" + quiet.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type lineOrErr struct {
		line string
		err  error
	}
	lines := make(chan lineOrErr, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- lineOrErr{line: sc.Text()}
		}
		lines <- lineOrErr{err: sc.Err()}
	}()

	readLine := func(within time.Duration) string {
		t.Helper()
		select {
		case l := <-lines:
			if l.err != nil {
				t.Fatalf("stream error: %v", l.err)
			}
			return l.line
		case <-time.After(within):
			t.Fatalf("no stream line within %v", within)
			return ""
		}
	}

	// The connected comment arrives immediately, well before any event.
	first := readLine(2 * time.Second)
	if !strings.HasPrefix(first, ": connected") {
		t.Fatalf("first stream line %q, want a : connected comment", first)
	}

	// With the job queued and silent, keepalives tick at the configured
	// period. Collect a few.
	keepalives := 0
	deadline := time.Now().Add(3 * time.Second)
	for keepalives < 3 && time.Now().Before(deadline) {
		line := readLine(2 * time.Second)
		if strings.HasPrefix(line, ": keepalive") {
			keepalives++
		} else if strings.HasPrefix(line, "event: iter") {
			t.Fatalf("queued job emitted an iteration event")
		}
	}
	if keepalives < 3 {
		t.Fatalf("saw %d keepalive frames in 3s at a 50ms period, want >= 3", keepalives)
	}

	// Cancelling the queued job terminates the stream with `done`.
	req, _ := http.NewRequest("POST", srv.URL+"/jobs/"+quiet.ID+"/cancel", nil)
	cresp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	sawDone := false
	deadline = time.Now().Add(10 * time.Second)
	for !sawDone && time.Now().Before(deadline) {
		if strings.HasPrefix(readLine(5*time.Second), "event: done") {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("stream did not close with a done event after cancel")
	}
}

// TestSSEInjectedWriteFailure pins the SSEWrite hook point: an injected
// stream-write fault drops the subscriber without disturbing the job.
func TestSSEInjectedWriteFailure(t *testing.T) {
	inj := faultinject.New().Add(faultinject.Rule{
		Point: faultinject.SSEWrite,
		Times: 1,
	})
	faultinject.Activate(inj)
	t.Cleanup(faultinject.Deactivate)

	srv, _ := startTestServer(t, t.TempDir(), 1)
	j := submit(t, srv, testSpec(810, 1, 0))

	resp, err := srv.Client().Get(srv.URL + "/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sawDone := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: done") {
			sawDone = true
		}
	}
	if sawDone {
		t.Fatal("stream survived an injected write fault")
	}
	if inj.Fired(faultinject.SSEWrite) != 1 {
		t.Fatalf("SSEWrite fired %d times, want 1", inj.Fired(faultinject.SSEWrite))
	}
	// The job itself is unharmed by the dropped subscriber.
	if got := waitDone(t, srv, j.ID, 2*time.Minute); got.State != StateDone {
		t.Fatalf("job after dropped stream: %s (%s)", got.State, got.Error)
	}
}
