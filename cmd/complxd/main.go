// Command complxd runs placement as a service: an HTTP/JSON daemon with a
// persistent job queue, a bounded worker pool and per-job observability.
//
// Jobs are submitted as JSON specs (POST /jobs), scheduled by priority then
// FIFO, and executed on a pool of -workers placement workers. Each job may
// carry its own thread budget (spec "threads"), so one heavy job cannot
// monopolize the parallel kernels of the others; budgets only change
// scheduling, never results — a job's placement is bitwise identical to the
// same run performed serially with the complx CLI.
//
// Every job checkpoints its global-placement state under the data
// directory. Killing the daemon — even SIGKILL — loses nothing: on restart
// the persisted queue is recovered, interrupted jobs are re-queued and
// resume from their last snapshot, bitwise identical to an uninterrupted
// run (DESIGN.md §10, §12).
//
// The daemon is hardened for hostile load (DESIGN.md §15): submissions pass
// admission control (queue cap, body-size limit, optional rate limit and
// memory watermark → 503/429/413 with Retry-After), running jobs live under
// per-job governance (deadline_seconds, a progress watchdog, panic
// isolation), and a job that keeps crashing the server is quarantined by
// the crash-loop breaker after -max-attempts interrupted runs. See the
// "Operating complxd" section of the README for the runbook.
//
// Observability: GET /metrics serves the daemon-level series followed by
// every job's Prometheus metrics with job="<id>" labels, GET /status
// reports the scheduler and each run's live state, GET /jobs/{id}/events
// streams per-iteration progress as Server-Sent Events, and /obs/{id}/
// exposes each job's full surface (including pprof). GET /healthz is
// liveness; GET /readyz flips to 503 the moment a drain begins.
//
// Example:
//
//	complxd -addr :8080 -data-dir /var/lib/complxd -workers 4
//	curl -XPOST localhost:8080/jobs -d '{"bench":"adaptec1","scale":0.1,"threads":2}'
//	curl localhost:8080/jobs/job-000001/events   # SSE progress
//	curl localhost:8080/jobs/job-000001/result
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"complx"
)

func main() {
	def := defaultConfig()
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		dataDir   = flag.String("data-dir", "./complxd-data", "persistent job store and per-job checkpoints")
		workers   = flag.Int("workers", def.workers, "concurrent placement workers")
		ckptEvery = flag.Int("checkpoint-interval", 0, "iterations between job checkpoints (0 = default 5)")
		threads   = flag.Int("threads", 0, "process-wide worker-pool ceiling for the parallel kernels (0 = GOMAXPROCS)")

		maxQueue = flag.Int("max-queue", def.maxQueue, "queued-job cap; submissions beyond it get 503 (0 = unbounded)")
		maxBody  = flag.Int64("max-body-bytes", def.maxBody, "request body cap in bytes; larger submissions get 413 (0 = unbounded)")
		memWM    = flag.Int("mem-watermark-mb", 0, "pause intake and shed queued jobs while the heap exceeds this many MiB (0 = disabled)")
		rate     = flag.Float64("submit-rate", 0, "submissions per second before 429 (0 = unlimited)")

		stall       = flag.Duration("watchdog-stall", 0, "fail a running job reporting no progress for this long (0 = disabled)")
		maxAttempts = flag.Int("max-attempts", def.maxAttempts, "quarantine a job after this many crash-interrupted attempts (0 = never)")
		retain      = flag.Duration("retain", 0, "remove terminal jobs' directories this long after they finish (0 = keep forever)")

		sseKeepalive = flag.Duration("sse-keepalive", def.sseKeepalive, "idle keepalive period on SSE streams (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", def.drainTimeout, "graceful HTTP drain bound on shutdown")
	)
	flag.Parse()

	cfg := def
	cfg.workers = *workers
	cfg.ckptEvery = *ckptEvery
	cfg.maxQueue = *maxQueue
	cfg.maxBody = *maxBody
	cfg.memWatermark = uint64(*memWM) << 20
	cfg.submitRate = *rate
	cfg.watchdogStall = *stall
	cfg.maxAttempts = *maxAttempts
	cfg.retain = *retain
	cfg.sseKeepalive = *sseKeepalive
	cfg.drainTimeout = *drainTimeout

	if err := run(*addr, *dataDir, *threads, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "complxd:", err)
		os.Exit(1)
	}
}

func run(addr, dataDir string, threads int, cfg config) error {
	complx.SetThreads(threads)

	st, err := newStore(dataDir)
	if err != nil {
		return fmt.Errorf("job store: %w", err)
	}
	hub := complx.NewObsHub()
	sched := newScheduler(st, hub, cfg)
	if err := sched.Recover(); err != nil {
		return fmt.Errorf("recover jobs: %w", err)
	}
	sched.Start()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	draining := &atomic.Bool{}
	srv := &http.Server{Handler: newServer(sched, hub, cfg, draining).handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// The line tests and scripts wait for; keep the format stable.
	log.Printf("complxd: listening on %s (workers=%d, data=%s)", ln.Addr(), cfg.workers, dataDir)

	select {
	case err := <-errc:
		sched.Stop()
		return err
	case <-ctx.Done():
	}
	// Graceful drain: flip /readyz to 503 first so load balancers stop
	// routing here, stop accepting, cancel running jobs cooperatively
	// (checkpoints make the interruption recoverable) and exit.
	log.Printf("complxd: shutting down")
	draining.Store(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	srv.Shutdown(shutdownCtx) //nolint:errcheck // drain is best-effort
	sched.Stop()
	return nil
}
