// Command complxd runs placement as a service: an HTTP/JSON daemon with a
// persistent job queue, a bounded worker pool and per-job observability.
//
// Jobs are submitted as JSON specs (POST /jobs), scheduled by priority then
// FIFO, and executed on a pool of -workers placement workers. Each job may
// carry its own thread budget (spec "threads"), so one heavy job cannot
// monopolize the parallel kernels of the others; budgets only change
// scheduling, never results — a job's placement is bitwise identical to the
// same run performed serially with the complx CLI.
//
// Every job checkpoints its global-placement state under the data
// directory. Killing the daemon — even SIGKILL — loses nothing: on restart
// the persisted queue is recovered, interrupted jobs are re-queued and
// resume from their last snapshot, bitwise identical to an uninterrupted
// run (DESIGN.md §10, §12).
//
// Observability: GET /metrics aggregates every job's Prometheus metrics
// with job="<id>" labels, GET /status reports the scheduler and each run's
// live state, GET /jobs/{id}/events streams per-iteration progress as
// Server-Sent Events, and /obs/{id}/ exposes each job's full surface
// (including pprof).
//
// Example:
//
//	complxd -addr :8080 -data-dir /var/lib/complxd -workers 4
//	curl -XPOST localhost:8080/jobs -d '{"bench":"adaptec1","scale":0.1,"threads":2}'
//	curl localhost:8080/jobs/job-000001/events   # SSE progress
//	curl localhost:8080/jobs/job-000001/result
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"complx"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		dataDir   = flag.String("data-dir", "./complxd-data", "persistent job store and per-job checkpoints")
		workers   = flag.Int("workers", 2, "concurrent placement workers")
		ckptEvery = flag.Int("checkpoint-interval", 0, "iterations between job checkpoints (0 = default 5)")
		threads   = flag.Int("threads", 0, "process-wide worker-pool ceiling for the parallel kernels (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*addr, *dataDir, *workers, *ckptEvery, *threads); err != nil {
		fmt.Fprintln(os.Stderr, "complxd:", err)
		os.Exit(1)
	}
}

func run(addr, dataDir string, workers, ckptEvery, threads int) error {
	complx.SetThreads(threads)

	st, err := newStore(dataDir)
	if err != nil {
		return fmt.Errorf("job store: %w", err)
	}
	hub := complx.NewObsHub()
	sched := newScheduler(st, hub, workers, ckptEvery)
	if err := sched.Recover(); err != nil {
		return fmt.Errorf("recover jobs: %w", err)
	}
	sched.Start()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	srv := &http.Server{Handler: newServer(sched, hub).handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// The line tests and scripts wait for; keep the format stable.
	log.Printf("complxd: listening on %s (workers=%d, data=%s)", ln.Addr(), workers, dataDir)

	select {
	case err := <-errc:
		sched.Stop()
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, cancel running jobs cooperatively
	// (checkpoints make the interruption recoverable) and exit.
	log.Printf("complxd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx) //nolint:errcheck // drain is best-effort
	sched.Stop()
	return nil
}
