package main

import (
	"strings"
	"testing"
	"time"

	"complx/internal/faultinject"
)

// TestJobDeadline pins deadline_seconds: a job too big to finish inside its
// deadline is cancelled cooperatively and fails with a stage-"deadline"
// error, while the daemon keeps serving.
func TestJobDeadline(t *testing.T) {
	srv, _ := startTestServer(t, t.TempDir(), 1)

	spec := heavySpec(500, 1, 0)
	spec.DeadlineSeconds = 0.15
	j := submit(t, srv, spec)

	got := waitDone(t, srv, j.ID, time.Minute)
	if got.State != StateFailed {
		t.Fatalf("deadline job: state %s (%s), want failed", got.State, got.Error)
	}
	if !strings.Contains(got.Error, "deadline") {
		t.Fatalf("deadline job error %q, want a deadline message", got.Error)
	}
	if got.Finished == nil {
		t.Errorf("deadline job has no finish time")
	}

	// The daemon is unharmed: the next job completes normally.
	after := submit(t, srv, testSpec(501, 1, 0))
	if g := waitDone(t, srv, after.ID, 2*time.Minute); g.State != StateDone {
		t.Fatalf("job after deadline failure: %s (%s)", g.State, g.Error)
	}
}

// TestJobWatchdog stalls a run mid-flight (a fault-injected sleep inside an
// engine iteration) and checks the progress watchdog cancels-and-fails it
// with a stage-"watchdog" error instead of letting it hang a worker
// forever.
func TestJobWatchdog(t *testing.T) {
	cfg := testConfig(1)
	cfg.watchdogStall = 250 * time.Millisecond

	inj := faultinject.New().Add(faultinject.Rule{
		Point: faultinject.EngineIteration,
		Match: "stall-victim",
		After: 3, // let a few iterations report progress first
		Do:    func(string) { time.Sleep(2 * time.Second) },
	})
	faultinject.Activate(inj)
	t.Cleanup(faultinject.Deactivate)

	srv, sched := startTestServerCfg(t, t.TempDir(), cfg)
	spec := testSpec(510, 1, 0)
	spec.Gen.Name = "stall-victim"
	j := submit(t, srv, spec)

	got := waitDone(t, srv, j.ID, time.Minute)
	if got.State != StateFailed {
		t.Fatalf("stalled job: state %s (%s), want failed", got.State, got.Error)
	}
	if !strings.Contains(got.Error, "watchdog") {
		t.Fatalf("stalled job error %q, want a watchdog message", got.Error)
	}
	if n := sched.dobs.Counter("complx_watchdog_cancels_total").Value(); n != 1 {
		t.Errorf("complx_watchdog_cancels_total = %v, want 1", n)
	}
	if g := sched.dobs.Gauge("complx_watchdog_active").Value(); g != 0 {
		t.Errorf("complx_watchdog_active = %v after the job finished, want 0", g)
	}
}

// TestJobPanicIsolation injects a panic into an engine iteration and checks
// the worker survives: the job fails with a stage-"panic" error carrying
// the panic value, and the daemon keeps placing subsequent jobs.
func TestJobPanicIsolation(t *testing.T) {
	inj := faultinject.New().Add(faultinject.Rule{
		Point: faultinject.EngineIteration,
		Match: "panic-victim",
		After: 2,
		Do:    func(string) { panic("injected chaos panic") },
	})
	faultinject.Activate(inj)
	t.Cleanup(faultinject.Deactivate)

	srv, sched := startTestServer(t, t.TempDir(), 1)
	spec := testSpec(520, 1, 0)
	spec.Gen.Name = "panic-victim"
	j := submit(t, srv, spec)

	got := waitDone(t, srv, j.ID, time.Minute)
	if got.State != StateFailed {
		t.Fatalf("panicking job: state %s (%s), want failed", got.State, got.Error)
	}
	if !strings.Contains(got.Error, "panic") || !strings.Contains(got.Error, "injected chaos panic") {
		t.Fatalf("panicking job error %q, want the panic value and stage", got.Error)
	}
	if n := sched.dobs.Counter("complx_job_panics_total").Value(); n != 1 {
		t.Errorf("complx_job_panics_total = %v, want 1", n)
	}

	// The pool survived the panic: the next job on the same worker is fine.
	after := submit(t, srv, testSpec(521, 1, 0))
	if g := waitDone(t, srv, after.ID, 2*time.Minute); g.State != StateDone {
		t.Fatalf("job after panic: %s (%s)", g.State, g.Error)
	}
}

// TestGracefulDrainRequeues pins the drain accounting: stopping the
// scheduler re-queues the running job resumable with its attempt handed
// back, so graceful restarts never count toward the quarantine cap.
func TestGracefulDrainRequeues(t *testing.T) {
	srv, sched := startTestServer(t, t.TempDir(), 1)

	j := submit(t, srv, heavySpec(530, 1, 0))
	waitRunning(t, srv, j.ID, time.Minute)

	sched.Stop()

	got := sched.Get(j.ID)
	if got == nil {
		t.Fatal("job vanished across a drain")
	}
	if got.State != StateQueued {
		t.Fatalf("drained job: state %s, want queued (resumable)", got.State)
	}
	if got.Attempts != 0 {
		t.Fatalf("drained job attempts %d, want 0 (graceful restarts must not count toward quarantine)", got.Attempts)
	}
	if got.Started != nil {
		t.Errorf("drained job still has a start time")
	}
	// And the persisted record agrees, so a restart resumes it.
	onDisk, err := sched.store.Load(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateQueued || onDisk.Attempts != 0 {
		t.Fatalf("persisted drained job: state %s attempts %d, want queued/0", onDisk.State, onDisk.Attempts)
	}
}

// TestWorkerStartInjection pins the WorkerStart hook point: an injected
// dispatch failure re-queues the job without consuming an attempt, and the
// job still completes.
func TestWorkerStartInjection(t *testing.T) {
	inj := faultinject.New().Add(faultinject.Rule{
		Point: faultinject.WorkerStart,
		Times: 2,
	})
	faultinject.Activate(inj)
	t.Cleanup(faultinject.Deactivate)

	srv, _ := startTestServer(t, t.TempDir(), 1)
	j := submit(t, srv, testSpec(540, 1, 0))
	got := waitDone(t, srv, j.ID, 2*time.Minute)
	if got.State != StateDone {
		t.Fatalf("job with injected dispatch failures: %s (%s)", got.State, got.Error)
	}
	if got.Attempts != 1 {
		t.Errorf("attempts %d, want 1 (injected dispatch failures must not consume attempts)", got.Attempts)
	}
	if n := inj.Fired(faultinject.WorkerStart); n != 2 {
		t.Errorf("WorkerStart fired %d times, want 2", n)
	}
}
