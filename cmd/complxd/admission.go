package main

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"complx/internal/perr"
)

// admission is the daemon's overload valve (DESIGN.md §15.1). Three
// independent gates run in front of the queue:
//
//   - a queue-depth cap: a full queue answers 503 + Retry-After instead of
//     accepting unbounded work;
//   - a memory watermark: a monitor goroutine (scheduler.memMonitor)
//     samples the heap and flips `paused` while it exceeds the watermark,
//     so intake stops — and queued work is shed — before the kernel's OOM
//     killer stops it for us;
//   - a token-bucket submission rate limit (429 on excess), for clients
//     that retry without backoff.
//
// Every rejection increments complx_admission_rejected_total and returns a
// structured stage-"admission" error body.
type admission struct {
	maxQueue   int
	retryAfter int

	watermark atomic.Uint64 // heap bytes; 0 = disabled
	paused    atomic.Bool   // set by the memory monitor while over watermark

	mu     sync.Mutex // guards the token bucket
	rate   float64    // tokens per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time
}

func newAdmission(cfg config) *admission {
	a := &admission{
		maxQueue:   cfg.maxQueue,
		retryAfter: cfg.retryAfter,
		rate:       cfg.submitRate,
		burst:      cfg.submitBurst,
		last:       time.Now(),
	}
	if a.burst < 1 {
		a.burst = 1
	}
	a.tokens = a.burst
	a.watermark.Store(cfg.memWatermark)
	return a
}

// reject builds the structured overload error for one gate.
func (a *admission) reject(code int, format string, args ...any) *apiError {
	return &apiError{
		code:       code,
		stage:      perr.StageAdmission,
		retryAfter: a.retryAfter,
		err:        fmt.Errorf(format, args...),
	}
}

// admit decides whether one submission may enter a queue currently holding
// `queued` jobs. Returns nil to admit or an *apiError describing the gate
// that refused. Called with the scheduler lock held, so the depth check is
// race-free against dispatch.
func (a *admission) admit(queued int) error {
	if a.paused.Load() {
		return a.reject(http.StatusServiceUnavailable,
			"intake paused: heap above the %d MiB memory watermark", a.watermark.Load()>>20)
	}
	if a.maxQueue > 0 && queued >= a.maxQueue {
		return a.reject(http.StatusServiceUnavailable,
			"queue full: %d jobs queued (cap %d)", queued, a.maxQueue)
	}
	if !a.allowRate() {
		return a.reject(http.StatusTooManyRequests,
			"submission rate limit: %.3g jobs/s (burst %.0f)", a.rate, a.burst)
	}
	return nil
}

// allowRate takes one token from the bucket, refilling by elapsed time.
func (a *admission) allowRate() bool {
	if a.rate <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := time.Now()
	a.tokens += now.Sub(a.last).Seconds() * a.rate
	a.last = now
	if a.tokens > a.burst {
		a.tokens = a.burst
	}
	if a.tokens < 1 {
		return false
	}
	a.tokens--
	return true
}

// setWatermark re-arms (or disables, with 0) the memory watermark at
// runtime; the next monitor sample applies it. Tests use this to trip the
// overload path deterministically.
func (a *admission) setWatermark(bytes uint64) {
	a.watermark.Store(bytes)
	if bytes == 0 {
		a.paused.Store(false)
	}
}
