package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postRaw submits a spec and returns the raw response (the caller owns the
// status-code assertion, unlike submit which requires 201).
func postRaw(t *testing.T, srv *httptest.Server, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeError parses the structured JSON error envelope.
func decodeError(t *testing.T, resp *http.Response) errorDetail {
	t.Helper()
	defer resp.Body.Close()
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not the structured envelope: %v", err)
	}
	return body.Error
}

// TestAdmissionQueueCap pins the overload path: with the queue full, a
// submission gets 503, a Retry-After header and a stage-"admission" body —
// and nothing is persisted for the rejected job.
func TestAdmissionQueueCap(t *testing.T) {
	cfg := testConfig(1)
	cfg.maxQueue = 2
	srv, sched := startTestServerCfg(t, t.TempDir(), cfg)

	blocker := submit(t, srv, heavySpec(400, 1, 0))
	waitRunning(t, srv, blocker.ID, time.Minute)
	q1 := submit(t, srv, testSpec(401, 1, 0))
	q2 := submit(t, srv, testSpec(402, 1, 0))

	resp := postRaw(t, srv, testSpec(403, 1, 0))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("503 without Retry-After header")
	}
	det := decodeError(t, resp)
	if det.Stage != "admission" || !strings.Contains(det.Message, "queue full") {
		t.Errorf("error detail %+v, want stage admission mentioning the full queue", det)
	}
	if det.RetryAfterSeconds != cfg.retryAfter {
		t.Errorf("retry_after_seconds %d, want %d", det.RetryAfterSeconds, cfg.retryAfter)
	}
	if n := sched.dobs.Counter("complx_admission_rejected_total").Value(); n < 1 {
		t.Errorf("complx_admission_rejected_total = %v, want >= 1", n)
	}

	// The queue drains normally; the rejected job never existed.
	for _, id := range []string{blocker.ID, q1.ID, q2.ID} {
		if j := waitDone(t, srv, id, 2*time.Minute); j.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, j.State, j.Error)
		}
	}
	if got := len(sched.List()); got != 3 {
		t.Errorf("%d jobs persisted, want 3 (rejection must not persist)", got)
	}
}

// TestAdmissionRateLimit pins the token bucket: burst 1, negligible refill,
// so the second immediate submission gets 429.
func TestAdmissionRateLimit(t *testing.T) {
	cfg := testConfig(1)
	cfg.submitRate = 0.0001
	cfg.submitBurst = 1
	srv, _ := startTestServerCfg(t, t.TempDir(), cfg)

	first := postRaw(t, srv, testSpec(410, 1, 0))
	first.Body.Close()
	if first.StatusCode != http.StatusCreated {
		t.Fatalf("first submission: status %d, want 201", first.StatusCode)
	}
	second := postRaw(t, srv, testSpec(411, 1, 0))
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission: status %d, want 429", second.StatusCode)
	}
	det := decodeError(t, second)
	if det.Stage != "admission" || !strings.Contains(det.Message, "rate") {
		t.Errorf("429 detail %+v, want stage admission mentioning the rate limit", det)
	}
}

// TestAdmissionBodyLimit pins the 413 path for oversized request bodies.
func TestAdmissionBodyLimit(t *testing.T) {
	cfg := testConfig(1)
	cfg.maxBody = 512
	srv, _ := startTestServerCfg(t, t.TempDir(), cfg)

	huge := testSpec(420, 1, 0)
	huge.Gen.Name = strings.Repeat("x", 4096)
	resp := postRaw(t, srv, huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submission: status %d, want 413", resp.StatusCode)
	}
	det := decodeError(t, resp)
	if det.Stage != "admission" || !strings.Contains(det.Message, "limit") {
		t.Errorf("413 detail %+v, want stage admission mentioning the limit", det)
	}
}

// TestMemoryWatermarkPausesAndSheds arms the memory watermark at 1 byte —
// always exceeded — and checks the full degradation sequence: intake pauses
// (503), the queued job is shed with a stage-"admission" error while the
// running job is left alone, and clearing the watermark resumes intake.
func TestMemoryWatermarkPausesAndSheds(t *testing.T) {
	cfg := testConfig(1)
	cfg.memPoll = 10 * time.Millisecond
	srv, sched := startTestServerCfg(t, t.TempDir(), cfg)

	blocker := submit(t, srv, heavySpec(430, 1, 9))
	waitRunning(t, srv, blocker.ID, time.Minute)
	queued := submit(t, srv, testSpec(431, 1, 0))

	sched.adm.setWatermark(1) // any heap exceeds 1 byte

	// Intake pauses within a few monitor ticks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := postRaw(t, srv, testSpec(432, 1, 0))
		code := resp.StatusCode
		var det errorDetail
		if code != http.StatusCreated {
			det = decodeError(t, resp)
		} else {
			resp.Body.Close()
		}
		if code == http.StatusServiceUnavailable && strings.Contains(det.Message, "watermark") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("intake did not pause: last status %d (%+v)", code, det)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The queued job is shed; the running blocker is not.
	shed := waitDone(t, srv, queued.ID, 10*time.Second)
	if shed.State != StateFailed || !strings.Contains(shed.Error, "shed") {
		t.Fatalf("queued job under pressure: state %s error %q, want failed + shed", shed.State, shed.Error)
	}
	if j := getJob(t, srv, blocker.ID); j.State.Terminal() && j.State != StateDone {
		t.Fatalf("running job was disturbed by shedding: %s (%s)", j.State, j.Error)
	}

	// Clearing the watermark resumes intake on the next tick.
	sched.adm.setWatermark(0)
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp := postRaw(t, srv, testSpec(433, 1, 0))
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusCreated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("intake did not resume: last status %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if j := waitDone(t, srv, blocker.ID, 2*time.Minute); j.State != StateDone {
		t.Fatalf("blocker: %s (%s)", j.State, j.Error)
	}
}

// TestShedPicksLowestPriority pins the victim selection directly: lowest
// priority first, newest submission breaking ties, running jobs untouched.
func TestShedPicksLowestPriority(t *testing.T) {
	st, err := newStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): nothing dispatches, the queue stays exactly as submitted.
	sched := newScheduler(st, nil, testConfig(1))
	var ids []string
	for _, pri := range []int{5, 1, 1, 3} {
		j, err := sched.Submit(testSpec(int64(440+len(ids)), 1, pri))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	sched.shedLowestPriority(2<<20, 1<<20)
	// Two priority-1 jobs: the newer one (ids[2]) goes first.
	if j := sched.Get(ids[2]); j.State != StateFailed {
		t.Fatalf("first shed victim: %s is %s, want the newest priority-1 job failed", ids[2], j.State)
	}
	sched.shedLowestPriority(2<<20, 1<<20)
	if j := sched.Get(ids[1]); j.State != StateFailed {
		t.Fatalf("second shed victim: %s is %s, want the older priority-1 job failed", ids[1], j.State)
	}
	sched.shedLowestPriority(2<<20, 1<<20)
	if j := sched.Get(ids[3]); j.State != StateFailed {
		t.Fatalf("third shed victim: %s is %s, want the priority-3 job failed", ids[3], j.State)
	}
	if j := sched.Get(ids[0]); j.State != StateQueued {
		t.Fatalf("priority-5 job: %s, want still queued", j.State)
	}
}
