package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"complx"
)

// testConfig is the daemon config tests start from: production defaults
// with the optional governance subsystems (watermark, watchdog, rate limit,
// retention) left disabled so each test arms only what it exercises.
func testConfig(workers int) config {
	cfg := defaultConfig()
	cfg.workers = workers
	return cfg
}

// startTestServer boots an in-process daemon (store + scheduler + HTTP) on
// a fresh data directory.
func startTestServer(t *testing.T, dir string, workers int) (*httptest.Server, *scheduler) {
	return startTestServerCfg(t, dir, testConfig(workers))
}

// startTestServerCfg is startTestServer with a caller-supplied config, for
// tests that arm admission control, governance or retention knobs.
func startTestServerCfg(t *testing.T, dir string, cfg config) (*httptest.Server, *scheduler) {
	t.Helper()
	st, err := newStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	hub := complx.NewObsHub()
	sched := newScheduler(st, hub, cfg)
	if err := sched.Recover(); err != nil {
		t.Fatal(err)
	}
	sched.Start()
	srv := httptest.NewServer(newServer(sched, hub, cfg, nil).handler())
	t.Cleanup(func() {
		srv.Close()
		sched.Stop()
	})
	return srv, sched
}

// testSpec is a small synthetic design that places in well under a second.
func testSpec(seed int64, threads, priority int) JobSpec {
	return JobSpec{
		Gen: &complx.BenchSpec{
			Name:     fmt.Sprintf("svc-%d", seed),
			NumCells: 300,
			Seed:     seed,
		},
		SkipDetailed: true,
		Threads:      threads,
		Priority:     priority,
	}
}

// heavySpec is a job big enough to occupy a worker for a few seconds —
// used to hold the (single) worker busy while the test stages the queue
// behind it, so scheduling-order assertions cannot race the blocker's
// completion.
func heavySpec(seed int64, threads, priority int) JobSpec {
	s := testSpec(seed, threads, priority)
	s.Gen.NumCells = 4000
	return s
}

func submit(t *testing.T, srv *httptest.Server, spec JobSpec) *Job {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		t.Fatalf("submit: status %d: %s", resp.StatusCode, buf.String())
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return &j
}

func getJob(t *testing.T, srv *httptest.Server, id string) *Job {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return &j
}

// waitRunning blocks until the job has been picked up by a worker (or has
// already finished, for robustness on fast machines).
func waitRunning(t *testing.T, srv *httptest.Server, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j := getJob(t, srv, id)
		if j.State == StateRunning || j.State.Terminal() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, j.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitDone(t *testing.T, srv *httptest.Server, id string, timeout time.Duration) *Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j := getJob(t, srv, id)
		if j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, j.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// serialResult runs the same job spec in-process without the daemon — no
// queue, no checkpointing, no thread budget — as the bitwise reference.
func serialResult(t *testing.T, spec JobSpec) *complx.Result {
	t.Helper()
	nl, target, err := buildNetlist(spec)
	if err != nil {
		t.Fatal(err)
	}
	alg := complx.AlgComPLx
	if spec.Algorithm != "" {
		if alg, err = complx.ParseAlgorithm(spec.Algorithm); err != nil {
			t.Fatal(err)
		}
	}
	if spec.TargetDensity > 0 {
		target = spec.TargetDensity
	}
	res, err := complx.Place(nl, complx.Options{
		Algorithm:     alg,
		TargetDensity: target,
		MaxIterations: spec.MaxIterations,
		Precond:       spec.Precond,
		SkipLegalize:  spec.SkipLegalize,
		SkipDetailed:  spec.SkipDetailed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDaemonLoadConcurrent is the load harness: more concurrent placements
// than workers, mixed per-job thread budgets, every result bitwise
// identical to a serial run of the same spec, and bounded memory. This is
// the acceptance test for per-job budgets (shared-state isolation) and the
// qp/par global-state fixes — run it with -race for the full proof.
func TestDaemonLoadConcurrent(t *testing.T) {
	srv, _ := startTestServer(t, t.TempDir(), 4)

	const n = 8
	specs := make([]JobSpec, n)
	for i := range specs {
		// Budgets 1..4 plus uncapped: exercises serial kernels, capped
		// pools and the default path side by side.
		specs[i] = testSpec(int64(100+i), i%5, 0)
	}

	// Serial references first (fresh process state is not required: the
	// determinism contract says budgets and concurrency cannot matter).
	refs := make([]*complx.Result, n)
	for i, sp := range specs {
		refs[i] = serialResult(t, sp)
	}

	ids := make([]string, n)
	var wg sync.WaitGroup
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp JobSpec) {
			defer wg.Done()
			ids[i] = submit(t, srv, sp).ID
		}(i, sp)
	}
	wg.Wait()

	for i, id := range ids {
		j := waitDone(t, srv, id, 2*time.Minute)
		if j.State != StateDone {
			t.Fatalf("job %s: state %s, error %q", id, j.State, j.Error)
		}
		if j.Result == nil {
			t.Fatalf("job %s: done without result", id)
		}
		if j.Result.HPWL != refs[i].HPWL {
			t.Errorf("job %s (threads=%d): HPWL %v != serial %v — daemon run is not bitwise identical",
				id, specs[i].Threads, j.Result.HPWL, refs[i].HPWL)
		}
		if j.Result.GlobalIterations != refs[i].GlobalIterations {
			t.Errorf("job %s: %d iterations != serial %d",
				id, j.Result.GlobalIterations, refs[i].GlobalIterations)
		}
	}

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	if limit := uint64(512 << 20); ms.HeapAlloc > limit {
		t.Errorf("heap after %d jobs: %d MiB, want < %d MiB", n, ms.HeapAlloc>>20, limit>>20)
	}
}

// TestDaemonSmoke is the CI smoke: concurrent jobs with mixed budgets, a
// metrics scrape with per-job labels, a live status view and an SSE
// progress stream.
func TestDaemonSmoke(t *testing.T) {
	srv, _ := startTestServer(t, t.TempDir(), 4)

	const n = 4
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = submit(t, srv, testSpec(int64(200+i), i, 0)).ID
	}

	// SSE on the first job: expect at least one iter event, then done.
	resp, err := srv.Client().Get(srv.URL + "/jobs/" + ids[0] + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var iterEvents int
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "event: iter" {
			iterEvents++
		}
		if line == "event: done" {
			sawDone = true
			break
		}
	}
	if iterEvents == 0 || !sawDone {
		t.Fatalf("SSE stream: %d iter events, done=%v", iterEvents, sawDone)
	}

	for _, id := range ids {
		if j := waitDone(t, srv, id, 2*time.Minute); j.State != StateDone {
			t.Fatalf("job %s: state %s, error %q", id, j.State, j.Error)
		}
	}

	// Metrics: aggregated exposition with job labels for every job.
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body) //nolint:errcheck
	metrics := buf.String()
	for _, id := range ids {
		if !strings.Contains(metrics, fmt.Sprintf("job=%q", id)) {
			t.Errorf("/metrics missing series for %s\n%.2000s", id, metrics)
		}
	}

	// Status: scheduler counters plus per-job live state.
	sresp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sv statusView
	if err := json.NewDecoder(sresp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	if sv.Workers != 4 || len(sv.Jobs) != n {
		t.Fatalf("status: workers=%d jobs=%d, want 4 and %d", sv.Workers, len(sv.Jobs), n)
	}

	// Per-job observability surface through the hub route.
	oresp, err := srv.Client().Get(srv.URL + "/obs/" + ids[0] + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer oresp.Body.Close()
	if oresp.StatusCode != http.StatusOK {
		t.Fatalf("/obs/%s/status: %d", ids[0], oresp.StatusCode)
	}
}

// TestDaemonPriorityAndCancel pins scheduling order and the two cancel
// paths (queued and running).
func TestDaemonPriorityAndCancel(t *testing.T) {
	srv, _ := startTestServer(t, t.TempDir(), 1)

	// Occupy the single worker with a multi-second job, wait until it is
	// actually running, then queue three jobs with priorities 0, 5, 5 —
	// the priority-5 pair must run first, in FIFO order. The running-state
	// wait plus the blocker's weight guarantee all three are queued while
	// the worker is still busy, so dispatch order is decided by priority
	// alone.
	blocker := submit(t, srv, heavySpec(300, 1, 0))
	waitRunning(t, srv, blocker.ID, time.Minute)
	low := submit(t, srv, testSpec(301, 1, 0))
	hiA := submit(t, srv, testSpec(302, 1, 5))
	hiB := submit(t, srv, testSpec(303, 1, 5))

	var order []string
	for _, id := range []string{blocker.ID, low.ID, hiA.ID, hiB.ID} {
		j := waitDone(t, srv, id, 2*time.Minute)
		if j.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, j.State, j.Error)
		}
		order = append(order, id)
	}
	finished := func(id string) time.Time { return *getJob(t, srv, id).Finished }
	if !finished(hiA.ID).Before(finished(low.ID)) || !finished(hiB.ID).Before(finished(low.ID)) {
		t.Errorf("priority-5 jobs finished after the priority-0 job: hiA=%v hiB=%v low=%v",
			finished(hiA.ID), finished(hiB.ID), finished(low.ID))
	}
	if finished(hiB.ID).Before(finished(hiA.ID)) {
		t.Errorf("equal-priority jobs ran out of submission order")
	}
	_ = order

	// Cancel a queued job: occupy the worker again, cancel while queued.
	busy := submit(t, srv, heavySpec(304, 1, 9))
	waitRunning(t, srv, busy.ID, time.Minute)
	victim := submit(t, srv, testSpec(305, 1, 0))
	req, _ := http.NewRequest("POST", srv.URL+"/jobs/"+victim.ID+"/cancel", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if j := waitDone(t, srv, victim.ID, time.Minute); j.State != StateCancelled {
		t.Fatalf("queued cancel: state %s", j.State)
	}
	if j := waitDone(t, srv, busy.ID, 2*time.Minute); j.State != StateDone {
		t.Fatalf("busy job: state %s (%s)", j.State, j.Error)
	}

	// Result endpoint: 200 for done, 409 for cancelled-without-result.
	rresp, err := srv.Client().Get(srv.URL + "/jobs/" + busy.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result of done job: %d", rresp.StatusCode)
	}
	cresp, err := srv.Client().Get(srv.URL + "/jobs/" + victim.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled-in-queue job: %d, want 409", cresp.StatusCode)
	}
}

// TestDaemonValidation pins the submit-side error paths.
func TestDaemonValidation(t *testing.T) {
	srv, _ := startTestServer(t, t.TempDir(), 1)
	for _, bad := range []JobSpec{
		{},                       // no input
		{Bench: "no-such-bench"}, // unknown benchmark
		{Bench: "adaptec1", Scale: -1},
		{Bench: "adaptec1", Algorithm: "no-such-algo"},
		{Bench: "adaptec1", Threads: -2},
	} {
		body, _ := json.Marshal(bad)
		resp, err := srv.Client().Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %+v accepted with status %d", bad, resp.StatusCode)
		}
	}
	if resp, err := srv.Client().Get(srv.URL + "/jobs/job-999999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: %d, want 404", resp.StatusCode)
		}
	}
}
