package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"complx/internal/faultinject"
)

// The chaos drill re-execs the test binary as a real complxd process (so it
// can be SIGKILLed and crash-looped) while still arming the in-process
// fault injector — the helper below runs inside the child and calls run()
// directly. Env vars carry the drill parameters.
const (
	chaosHelperEnv  = "COMPLXD_CHAOS_HELPER"
	chaosDataDirEnv = "COMPLXD_CHAOS_DATADIR"
	chaosPersistEnv = "COMPLXD_CHAOS_PERSIST" // job ID whose next persist fails once
)

// TestChaosDaemonHelper is not a test of its own: it is the daemon process
// the chaos drill crash-loops. It arms the poison rule — any design whose
// name contains "poison" hard-exits the process at its first engine
// iteration, simulating a job that OOM-kills or segfaults the server — plus
// a one-shot dispatch flake and (optionally) a one-shot persist failure,
// then serves until killed.
func TestChaosDaemonHelper(t *testing.T) {
	if os.Getenv(chaosHelperEnv) != "1" {
		t.Skip("not a chaos helper invocation")
	}
	inj := faultinject.New().Add(faultinject.Rule{
		Point: faultinject.EngineIteration,
		Match: "poison",
		Times: 1 << 20,
		Do:    func(string) { os.Exit(3) },
	}).Add(faultinject.Rule{
		Point: faultinject.WorkerStart,
		After: 1,
		Times: 1,
	})
	if match := os.Getenv(chaosPersistEnv); match != "" {
		inj.Add(faultinject.Rule{Point: faultinject.JobPersist, Match: match, Times: 1})
	}
	faultinject.Activate(inj)

	cfg := defaultConfig()
	cfg.workers = 1
	cfg.ckptEvery = 1
	cfg.maxAttempts = 3
	if err := run("127.0.0.1:0", os.Getenv(chaosDataDirEnv), 0, cfg); err != nil {
		t.Fatalf("chaos helper daemon: %v", err)
	}
}

// startChaosHelper launches the helper process and returns once the listen
// line appears on its stderr.
func startChaosHelper(t *testing.T, dataDir string, extraEnv ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestChaosDaemonHelper$")
	cmd.Env = append(os.Environ(),
		chaosHelperEnv+"=1",
		chaosDataDirEnv+"="+dataDir,
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() { // keep draining so the child never blocks on stderr
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				select {
				case addrc <- fields[0]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(2 * time.Minute):
		_ = cmd.Process.Kill()
		t.Fatal("chaos helper did not report its listen address")
		return nil, ""
	}
}

// TestChaosDrill is the daemon-level chaos harness (DESIGN.md §15.4): a mix
// of good, slow and poison jobs is run through repeated daemon deaths —
// three crash-loop cycles where the poison job hard-exits the process the
// moment it is dispatched, then one SIGKILL mid-placement — with dispatch
// and persistence faults injected along the way. Afterwards every job must
// be terminal with nothing lost or duplicated: the goods and the slow job
// done, and the poison job quarantined after exactly the configured attempt
// cap. Runs in -short mode (the CI chaos-smoke job) by design.
func TestChaosDrill(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX-only")
	}
	dataDir := t.TempDir()

	// Cycle 1: boot, submit the mixed workload, and let the poison job take
	// the daemon down. The poison job runs at priority 9 on the single
	// worker, so after each restart it is dispatched first and kills the
	// process before the innocent jobs accumulate attempts — exactly the
	// crash-loop shape the quarantine breaker exists for.
	cmd, base := startChaosHelper(t, dataDir)
	var goodIDs []string
	for i := 0; i < 3; i++ {
		goodIDs = append(goodIDs, postJob(t, base, testSpec(int64(900+i), 1, 0)))
	}
	slowID := postJob(t, base, heavySpec(910, 1, 0))
	poison := testSpec(920, 1, 9)
	poison.Gen.Name = "poison-1"
	poisonID := postJob(t, base, poison)
	all := append(append([]string{}, goodIDs...), slowID, poisonID)

	waitPoisonExit := func(cmd *exec.Cmd, cycle int) {
		t.Helper()
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
			if code := cmd.ProcessState.ExitCode(); code != 3 {
				t.Fatalf("cycle %d: daemon exited with code %d, want the poison exit 3", cycle, code)
			}
		case <-time.After(2 * time.Minute):
			_ = cmd.Process.Kill()
			t.Fatalf("cycle %d: poison job did not kill the daemon", cycle)
		}
	}
	waitPoisonExit(cmd, 1)

	// Cycles 2 and 3: restart on the same data directory; the recovered
	// poison job is re-dispatched and kills the daemon again, consuming one
	// attempt per cycle.
	for cycle := 2; cycle <= 3; cycle++ {
		cmd, _ = startChaosHelper(t, dataDir)
		waitPoisonExit(cmd, cycle)
	}

	// Cycle 4: with the poison job's attempts at the cap, this boot
	// quarantines it and starts placing the innocents — which we SIGKILL
	// mid-placement (with a persist fault armed on the slow job for good
	// measure), exactly like an external OOM kill.
	cmd, base = startChaosHelper(t, dataDir, chaosPersistEnv+"="+slowID)
	time.Sleep(4 * time.Second)
	_ = cmd.Process.Kill()
	_ = cmd.Wait()

	// Final boot: everything must converge to a terminal state.
	cmd, base = startChaosHelper(t, dataDir)
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})

	deadline := time.Now().Add(4 * time.Minute)
	jobs := map[string]*Job{}
	for {
		allTerminal := true
		for _, id := range all {
			j, err := fetchJob(t, base, id)
			if err != nil {
				allTerminal = false
				break
			}
			jobs[id] = j
			if !j.State.Terminal() {
				allTerminal = false
				break
			}
		}
		if allTerminal {
			break
		}
		if time.Now().After(deadline) {
			for id, j := range jobs {
				t.Logf("job %s: %s attempts=%d err=%q", id, j.State, j.Attempts, j.Error)
			}
			t.Fatal("jobs did not all reach a terminal state after the chaos cycles")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Nothing lost, nothing duplicated: the daemon knows exactly the jobs
	// that were submitted, each exactly once.
	resp, err := http.Get(base + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []*Job
	if err := decodeBody(resp, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(all) {
		t.Fatalf("daemon knows %d jobs, want %d (lost or duplicated work)", len(list), len(all))
	}
	seen := map[string]bool{}
	for _, j := range list {
		if seen[j.ID] {
			t.Fatalf("job %s appears twice", j.ID)
		}
		seen[j.ID] = true
	}
	for _, id := range all {
		if !seen[id] {
			t.Fatalf("job %s was lost", id)
		}
	}

	// The poison job is quarantined after exactly the configured cap; the
	// innocents all completed despite four daemon deaths.
	pj := jobs[poisonID]
	if pj.State != StateQuarantined {
		t.Fatalf("poison job: %s (%s), want quarantined", pj.State, pj.Error)
	}
	if pj.Attempts != 3 {
		t.Fatalf("poison job quarantined at %d attempts, want exactly the cap (3)", pj.Attempts)
	}
	if !strings.Contains(pj.Error, "crash-loop") {
		t.Errorf("poison job error %q, want a crash-loop message", pj.Error)
	}
	for _, id := range append(goodIDs, slowID) {
		if j := jobs[id]; j.State != StateDone {
			t.Fatalf("innocent job %s: %s (%s), want done", id, j.State, j.Error)
		}
	}

	// The surviving daemon is healthy and its heap is bounded.
	var sv statusView
	sresp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := decodeBody(sresp, &sv); err != nil {
		t.Fatal(err)
	}
	if sv.HeapAllocMB > 512 {
		t.Errorf("daemon heap after the drill: %.0f MiB, want < 512", sv.HeapAllocMB)
	}
	if sv.Quarantined != 1 {
		t.Errorf("status reports %d quarantined jobs, want 1", sv.Quarantined)
	}
	rresp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after the drill: %d, want 200", rresp.StatusCode)
	}
}

func decodeBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
