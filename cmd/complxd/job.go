package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"complx"
	"complx/internal/faultinject"
	"complx/internal/fsatomic"
)

// JobState is a job's position in the lifecycle. Transitions are
// queued → running → {done, failed, cancelled}; a running job whose server
// dies is re-queued on restart and resumes from its checkpoint — unless its
// attempts have reached the quarantine cap, in which case the crash-loop
// breaker parks it in quarantined instead of re-running it (DESIGN.md §15).
type JobState string

const (
	StateQueued      JobState = "queued"
	StateRunning     JobState = "running"
	StateDone        JobState = "done"
	StateFailed      JobState = "failed"
	StateCancelled   JobState = "cancelled"
	StateQuarantined JobState = "quarantined"
)

// Terminal reports whether the state is final: the job will never run
// again and its record/result are immutable from here on.
func (s JobState) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateQuarantined:
		return true
	}
	return false
}

// JobSpec is the client-supplied description of one placement job.
type JobSpec struct {
	// Bench names a synthetic benchmark (e.g. "adaptec1"); Scale optionally
	// shrinks it. Exactly one input form is required: Bench, or an inline
	// synthetic design via Gen.
	Bench string  `json:"bench,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// Gen generates a custom synthetic design instead of a named benchmark.
	Gen *complx.BenchSpec `json:"gen,omitempty"`

	// Algorithm is "complx" (default), "simpl", "fastplace-cs" or "nlp".
	Algorithm     string  `json:"algorithm,omitempty"`
	TargetDensity float64 `json:"target_density,omitempty"`
	MaxIterations int     `json:"max_iterations,omitempty"`
	Precond       string  `json:"precond,omitempty"`
	SkipLegalize  bool    `json:"skip_legalize,omitempty"`
	SkipDetailed  bool    `json:"skip_detailed,omitempty"`

	// Multilevel runs the V-cycle (complx.Options.Multilevel) with the
	// given knobs; zero knobs select the driver defaults. ComPLx and SimPL
	// only.
	Multilevel    bool `json:"multilevel,omitempty"`
	MLTargetCells int  `json:"ml_target_cells,omitempty"`
	MLMaxLevels   int  `json:"ml_max_levels,omitempty"`
	MLRefineIters int  `json:"ml_refine_iters,omitempty"`

	// Portfolio runs the competitive portfolio search
	// (complx.Options.Portfolio) with the given knobs; zero knobs select
	// the driver defaults. ComPLx and SimPL only, exclusive with
	// Multilevel.
	Portfolio      bool    `json:"portfolio,omitempty"`
	PFMembers      int     `json:"pf_members,omitempty"`
	PFRounds       int     `json:"pf_rounds,omitempty"`
	PFCullFraction float64 `json:"pf_cull_fraction,omitempty"`
	PFSeed         int64   `json:"pf_seed,omitempty"`

	// Threads caps the parallel-kernel helpers this job may occupy
	// (complx.Options.Threads); 0 leaves the job uncapped up to the
	// process-wide pool. Budgets only change scheduling, never results.
	Threads int `json:"threads,omitempty"`
	// Priority orders dispatch: higher runs first; equal priorities run in
	// submission order (FIFO). Under memory pressure the watermark monitor
	// sheds queued jobs lowest-priority-first.
	Priority int `json:"priority,omitempty"`
	// DeadlineSeconds bounds the job's wall-clock once it starts running;
	// past it the run is cancelled cooperatively and the job fails with a
	// stage-"deadline" error (best-so-far result attached when one
	// exists). 0 = no deadline.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
}

// Validate rejects specs the scheduler could not run.
func (s *JobSpec) Validate() error {
	if (s.Bench == "") == (s.Gen == nil) {
		return fmt.Errorf("exactly one of bench or gen is required")
	}
	if s.Bench != "" {
		if _, ok := complx.BenchmarkByName(s.Bench); !ok {
			return fmt.Errorf("unknown benchmark %q", s.Bench)
		}
	}
	if s.Scale < 0 {
		return fmt.Errorf("scale must be >= 0")
	}
	if s.Algorithm != "" {
		if _, err := complx.ParseAlgorithm(s.Algorithm); err != nil {
			return err
		}
	}
	if s.Threads < 0 {
		return fmt.Errorf("threads must be >= 0")
	}
	if s.DeadlineSeconds < 0 {
		return fmt.Errorf("deadline_seconds must be >= 0")
	}
	if s.Multilevel {
		switch s.Algorithm {
		case "", "complx", "simpl":
		default:
			return fmt.Errorf("multilevel requires the complx or simpl algorithm (got %q)", s.Algorithm)
		}
	}
	if s.Portfolio {
		if s.Multilevel {
			return fmt.Errorf("portfolio and multilevel are mutually exclusive")
		}
		switch s.Algorithm {
		case "", "complx", "simpl":
		default:
			return fmt.Errorf("portfolio requires the complx or simpl algorithm (got %q)", s.Algorithm)
		}
		// Surfaces the facade's stage-"options" *PlaceError for out-of-range
		// knobs before the job is queued.
		if err := s.portfolioOptions().Validate(); err != nil {
			return err
		}
	}
	return nil
}

// portfolioOptions maps the spec's portfolio knobs onto the facade options.
func (s *JobSpec) portfolioOptions() complx.PortfolioOptions {
	return complx.PortfolioOptions{
		Enabled:      s.Portfolio,
		Members:      s.PFMembers,
		Rounds:       s.PFRounds,
		CullFraction: s.PFCullFraction,
		Seed:         s.PFSeed,
	}
}

// JobResult is the subset of complx.Result persisted with the job.
type JobResult struct {
	HPWL             float64 `json:"hpwl"`
	ScaledHPWL       float64 `json:"scaled_hpwl"`
	OverflowPercent  float64 `json:"overflow_percent"`
	GlobalIterations int     `json:"global_iterations"`
	Converged        bool    `json:"converged"`
	Legalized        bool    `json:"legalized"`
	Detailed         bool    `json:"detailed"`
	Resumed          bool    `json:"resumed"`
	Precond          string  `json:"precond,omitempty"`
	CGIterations     int     `json:"cg_iterations"`
	TotalSeconds     float64 `json:"total_seconds"`
	// Portfolio summary, present only when the job ran a portfolio search
	// (a pointer so that winner member 0 is distinguishable from "no
	// portfolio").
	PortfolioWinner  *int   `json:"portfolio_winner,omitempty"`
	PortfolioVariant string `json:"portfolio_variant,omitempty"`
	PortfolioCulls   int    `json:"portfolio_culls,omitempty"`
	PortfolioReseeds int    `json:"portfolio_reseeds,omitempty"`
}

// Job is one persisted job record: the spec, the lifecycle state, and the
// result or error once finished. The record is the durable unit — it is
// rewritten atomically on every state transition, so a killed server
// recovers the exact queue.
type Job struct {
	ID        string     `json:"id"`
	Seq       int        `json:"seq"`
	Spec      JobSpec    `json:"spec"`
	State     JobState   `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Attempts counts scheduling attempts, incremented on each transition
	// to running; >1 means the job resumed after a server death.
	Attempts int        `json:"attempts"`
	Error    string     `json:"error,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
}

// store persists job records under dir/jobs/<id>/job.json with atomic
// replaces, and allocates monotonically increasing job IDs.
type store struct {
	dir string

	mu      sync.Mutex
	nextSeq int
	// corrupt counts the unreadable job records skipped by the most recent
	// LoadAll — a truncated or invalid job.json is logged and skipped,
	// never fatal to startup (the record stays on disk for forensics).
	corrupt int
}

func newStore(dir string) (*store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	s := &store{dir: dir, nextSeq: 1}
	jobs, err := s.LoadAll()
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		if j.Seq >= s.nextSeq {
			s.nextSeq = j.Seq + 1
		}
	}
	// Also advance past unreadable directories, so a new job never reuses —
	// and overwrites — the directory of a record LoadAll skipped as corrupt.
	entries, err := os.ReadDir(filepath.Join(dir, "jobs"))
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "job-%d", &seq); err == nil && seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	return s, nil
}

// NewJob allocates an ID, persists the queued record and returns it.
func (s *store) NewJob(spec JobSpec) (*Job, error) {
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", seq),
		Seq:       seq,
		Spec:      spec,
		State:     StateQueued,
		Submitted: time.Now().UTC(),
	}
	if err := s.Save(j); err != nil {
		return nil, err
	}
	return j, nil
}

func (s *store) jobDir(id string) string { return filepath.Join(s.dir, "jobs", id) }

// CheckpointDir is where the job's placement checkpoints live.
func (s *store) CheckpointDir(id string) string { return filepath.Join(s.jobDir(id), "ckpt") }

// Save atomically rewrites the job record.
func (s *store) Save(j *Job) error {
	if err := faultinject.FireErr(faultinject.JobPersist, j.ID); err != nil {
		return err
	}
	dir := s.jobDir(j.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	return fsatomic.WriteFileBytes(filepath.Join(dir, "job.json"), 0o644, data)
}

// Load reads one job record by ID.
func (s *store) Load(id string) (*Job, error) {
	data, err := os.ReadFile(filepath.Join(s.jobDir(id), "job.json"))
	if err != nil {
		return nil, err
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("job %s: corrupt record: %w", id, err)
	}
	return &j, nil
}

// LoadAll reads every job record, sorted by sequence number. Directories
// without a readable record — a crash before the first Save committed, or
// a truncated/corrupted job.json — are skipped with a logged warning and
// counted (CorruptSkipped), never fatal to startup.
func (s *store) LoadAll() ([]*Job, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var jobs []*Job
	corrupt := 0
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "job-") {
			continue
		}
		j, err := s.Load(e.Name())
		if err != nil {
			corrupt++
			log.Printf("complxd: skipping unreadable job record %s: %v", e.Name(), err)
			continue
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Seq < jobs[b].Seq })
	s.mu.Lock()
	s.corrupt = corrupt
	s.mu.Unlock()
	return jobs, nil
}

// CorruptSkipped reports how many unreadable records the last LoadAll
// skipped.
func (s *store) CorruptSkipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}
