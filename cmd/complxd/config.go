package main

import "time"

// config collects every production-hardening knob of the daemon in one
// place, shared by the scheduler (queue, governance, quarantine, GC) and
// the HTTP server (body limits, SSE keepalive, drain). main wires the
// flags; tests construct it directly. Zero values mean "disabled" for the
// optional subsystems (watermark, watchdog, retention, rate limit) and
// defaultConfig supplies production defaults for the rest.
type config struct {
	// workers is the placement worker-pool size (min 1).
	workers int
	// ckptEvery is the per-job checkpoint interval in iterations
	// (0 = facade default).
	ckptEvery int

	// Admission control (DESIGN.md §15.1).

	// maxQueue caps the number of queued (not running) jobs; submissions
	// beyond it get 503 + Retry-After. 0 = unbounded.
	maxQueue int
	// maxBody caps a request body in bytes; larger submissions get 413.
	maxBody int64
	// memWatermark pauses intake (503) and sheds lowest-priority queued
	// jobs while the process heap exceeds this many bytes. 0 = disabled.
	memWatermark uint64
	// memPoll is the watermark sampling period.
	memPoll time.Duration
	// submitRate limits POST /jobs to this many submissions per second
	// (token bucket of submitBurst); excess gets 429. 0 = unlimited.
	submitRate  float64
	submitBurst float64
	// retryAfter is the Retry-After hint in seconds on 503/429 responses.
	retryAfter int

	// Per-job governance (DESIGN.md §15.2).

	// watchdogStall cancels-and-fails a job that reports no iteration
	// progress for this long. 0 = disabled. The window must exceed the
	// worst-case time between engine iterations (including netlist
	// generation and the first assembly) for the workload served.
	watchdogStall time.Duration

	// Quarantine and retention (DESIGN.md §15.3).

	// maxAttempts quarantines a job whose scheduling attempts reach this
	// cap without a graceful accounting — i.e. a job that keeps taking the
	// server down with it. 0 = never quarantine.
	maxAttempts int
	// retain removes a terminal job's directory this long after it
	// finished. 0 = keep forever.
	retain time.Duration
	// gcEvery is the retention janitor period.
	gcEvery time.Duration

	// HTTP surface.

	// sseKeepalive is the idle-comment period on /jobs/{id}/events so
	// proxies do not drop quiet long-running streams. 0 = no keepalives.
	sseKeepalive time.Duration
	// drainTimeout bounds the graceful HTTP drain on shutdown.
	drainTimeout time.Duration
}

// defaultConfig returns the production defaults main's flags start from.
func defaultConfig() config {
	return config{
		workers:      2,
		maxQueue:     256,
		maxBody:      1 << 20, // 1 MiB of JSON is a very large job spec
		memPoll:      2 * time.Second,
		submitBurst:  16,
		retryAfter:   5,
		maxAttempts:  3,
		gcEvery:      time.Minute,
		sseKeepalive: 15 * time.Second,
		drainTimeout: 10 * time.Second,
	}
}
