package main

import (
	"bytes"
	"strings"
	"testing"

	"complx/internal/experiments"
)

func TestRunAllSingle(t *testing.T) {
	var buf bytes.Buffer
	cfg := experiments.Config{Scale: 0.05, MaxBenchmarks: 1}
	if err := runAll("figure1", &buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("missing output")
	}
}

func TestRunAllUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := runAll("nope", &buf, experiments.Config{Scale: 0.05}); err == nil {
		t.Error("expected error")
	}
}
