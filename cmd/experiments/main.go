// Command experiments regenerates the paper's tables and figures on the
// synthetic ISPD-analog suites (see DESIGN.md §4 for the experiment index).
//
// Examples:
//
//	experiments -run all
//	experiments -run table1 -scale 0.5
//	experiments -run figure3 -max 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"complx/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment id ("+strings.Join(experiments.All(), ", ")+") or 'all'")
		scale = flag.Float64("scale", 1.0, "benchmark cell-count scale factor")
		max   = flag.Int("max", 0, "limit the number of benchmarks per suite (0 = all)")
	)
	flag.Parse()
	if err := runAll(*run, os.Stdout, experiments.Config{Scale: *scale, MaxBenchmarks: *max}); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runAll dispatches one experiment id, or every experiment for "all".
func runAll(id string, w io.Writer, cfg experiments.Config) error {
	ids := []string{id}
	if id == "all" {
		ids = experiments.All()
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := experiments.Run(id, w, cfg); err != nil {
			return err
		}
	}
	return nil
}
