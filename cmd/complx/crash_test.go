package main

import (
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"complx/internal/chkpt"
)

// hpwlRe extracts the final HPWL line from the CLI's report.
var hpwlRe = regexp.MustCompile(`(?m)^HPWL:\s+([0-9eE+.-]+)`)

func parseHPWL(t *testing.T, out []byte) float64 {
	t.Helper()
	m := hpwlRe.FindSubmatch(out)
	if m == nil {
		t.Fatalf("no HPWL line in output:\n%s", out)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("bad HPWL %q: %v", m[1], err)
	}
	return v
}

// TestCrashSIGKILLResume is the end-to-end crash-recovery drill: it builds
// the real complx binary, SIGKILLs a checkpointing placement run mid-flight
// (no cleanup handler runs, exactly like a crash or OOM kill), then reruns
// with -resume and requires the recovered placement's HPWL to match the
// uninterrupted run within 0.1% (the engine-level contract is bitwise; the
// CLI check is deliberately looser so it stays robust to report formatting).
func TestCrashSIGKILLResume(t *testing.T) {
	// bigblue3 runs a couple of seconds at ~120ms per iteration: long
	// enough that a kill shortly after the first snapshot always lands
	// mid-run, short enough for a test. Legalization stays on — the
	// recovered run must end in a *legal* placement — only detailed
	// placement is skipped for speed.
	crashDrill(t, []string{"-bench", "bigblue3", "-skip-detailed"}, chkpt.FileName)
}

// TestCrashSIGKILLResumePortfolio runs the drill through the portfolio
// search: the kill lands mid-round (after the first round's portfolio
// snapshot hits the disk), and the resume must rebuild the member table —
// forking every member back from its encoded state — replay the remaining
// rounds and crown the same winner. The driver-level contract is bitwise,
// so the recovered HPWL matches the uninterrupted run exactly.
func TestCrashSIGKILLResumePortfolio(t *testing.T) {
	crashDrill(t, []string{
		"-bench", "bigblue3", "-skip-detailed",
		"-portfolio", "-pf-members", "3", "-pf-rounds", "3",
	}, chkpt.PortfolioFileName)
}

// TestCrashSIGKILLResumeMultilevel runs the same drill through the V-cycle:
// the kill lands inside a level's engine loop (usually the coarse solve,
// which dominates the run), and the resume must rebuild the coarsening
// stack, skip the already-solved coarser levels and finish the descent.
func TestCrashSIGKILLResumeMultilevel(t *testing.T) {
	crashDrill(t, []string{
		"-bench", "bigblue3", "-skip-detailed",
		"-multilevel", "-ml-target-cells", "2000", "-ml-refine-iters", "6",
	}, chkpt.FileName)
}

// crashDrill is the shared SIGKILL drill body. ckptName is the snapshot
// file the drill waits for before killing — flat and multilevel runs write
// chkpt.FileName, portfolio runs write chkpt.PortfolioFileName.
func crashDrill(t *testing.T, args []string, ckptName string) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX-only")
	}
	if testing.Short() {
		t.Skip("subprocess crash drill skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "complx-under-test")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building complx: %v\n%s", err, out)
	}

	// Uninterrupted reference.
	refOut, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("reference run: %v\n%s", err, refOut)
	}
	refHPWL := parseHPWL(t, refOut)

	// Crash victim: checkpoint every iteration, SIGKILL shortly after the
	// first snapshot hits the disk.
	ckptDir := t.TempDir()
	victim := exec.Command(bin, append(args, "-checkpoint", ckptDir, "-checkpoint-interval", "1")...)
	if err := victim.Start(); err != nil {
		t.Fatalf("starting victim: %v", err)
	}
	ckptFile := filepath.Join(ckptDir, ckptName)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if _, err := os.Stat(ckptFile); err == nil {
			break
		}
		if time.Now().After(deadline) {
			_ = victim.Process.Kill()
			t.Fatal("victim produced no checkpoint within 2 minutes")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // let a few more iterations land
	_ = victim.Process.Kill()          // SIGKILL: no deferred cleanup runs
	_ = victim.Wait()

	// The kill must leave a readable snapshot behind (atomic replace).
	if _, err := os.Stat(ckptFile); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}

	// Resume and compare.
	resOut, err := exec.Command(bin, append(args, "-checkpoint", ckptDir, "-resume")...).CombinedOutput()
	if err != nil {
		t.Fatalf("resumed run: %v\n%s", err, resOut)
	}
	if !strings.Contains(string(resOut), "resumed:") {
		t.Errorf("resumed run did not report resuming:\n%s", resOut)
	}
	if !strings.Contains(string(resOut), "legal violations: 0") {
		t.Errorf("resumed run is not legal:\n%s", resOut)
	}
	resHPWL := parseHPWL(t, resOut)
	if diff := math.Abs(resHPWL-refHPWL) / refHPWL; diff > 1e-3 {
		t.Errorf("resumed HPWL %.1f differs from uninterrupted %.1f by %.4f%% (limit 0.1%%)",
			resHPWL, refHPWL, 100*diff)
	}
}
