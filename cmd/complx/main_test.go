package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"complx"
)

func TestRunBench(t *testing.T) {
	dir := t.TempDir()
	pl := filepath.Join(dir, "out.pl")
	err := run(context.Background(), runCfg{bench: "adaptec1", scale: 0.05, algo: "complx", maxIter: 20, plOut: pl})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(pl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "UCLA pl 1.0") {
		t.Error("placement file malformed")
	}
}

func TestRunAuxRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Emit a benchmark, then place it from the .aux file.
	spec, _ := complx.BenchmarkByName("newblue1")
	nl, err := complx.Generate(complx.ScaleBenchmark(spec, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if err := complx.WriteBookshelf(dir, nl, 0.8); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "placed")
	err = run(context.Background(), runCfg{aux: filepath.Join(dir, "newblue1.aux"), scale: 1, algo: "simpl", maxIter: 20, outDir: out})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "newblue1.aux")); err != nil {
		t.Error("placed benchmark not written")
	}
}

// TestRunTimeout exercises the -timeout path: a budget far too small to
// finish global placement must still produce a written, well-formed .pl
// file and a nil error (the CLI exits 0 on graceful cancellation).
func TestRunTimeout(t *testing.T) {
	dir := t.TempDir()
	pl := filepath.Join(dir, "out.pl")
	err := run(context.Background(), runCfg{
		bench: "adaptec1", scale: 0.2, algo: "complx", plOut: pl,
		timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("timed-out run must exit cleanly, got %v", err)
	}
	data, err := os.ReadFile(pl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "UCLA pl 1.0") {
		t.Error("placement file malformed")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no input", func() error {
			return run(context.Background(), runCfg{scale: 1, algo: "complx"})
		}},
		{"both inputs", func() error {
			return run(context.Background(), runCfg{aux: "x.aux", bench: "adaptec1", scale: 1, algo: "complx"})
		}},
		{"unknown bench", func() error {
			return run(context.Background(), runCfg{bench: "nope", scale: 1, algo: "complx"})
		}},
		{"unknown algo", func() error {
			return run(context.Background(), runCfg{bench: "adaptec1", scale: 0.05, algo: "magic"})
		}},
		{"missing aux", func() error {
			return run(context.Background(), runCfg{aux: "/does/not/exist.aux", scale: 1, algo: "complx"})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.fn() == nil {
				t.Error("expected error")
			}
		})
	}
}
