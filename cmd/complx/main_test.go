package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"complx"
	"complx/internal/obs"
)

func TestRunBench(t *testing.T) {
	dir := t.TempDir()
	pl := filepath.Join(dir, "out.pl")
	err := run(context.Background(), runCfg{bench: "adaptec1", scale: 0.05, algo: "complx", maxIter: 20, plOut: pl})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(pl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "UCLA pl 1.0") {
		t.Error("placement file malformed")
	}
}

func TestRunAuxRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Emit a benchmark, then place it from the .aux file.
	spec, _ := complx.BenchmarkByName("newblue1")
	nl, err := complx.Generate(complx.ScaleBenchmark(spec, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if err := complx.WriteBookshelf(dir, nl, 0.8); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "placed")
	err = run(context.Background(), runCfg{aux: filepath.Join(dir, "newblue1.aux"), scale: 1, algo: "simpl", maxIter: 20, outDir: out})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "newblue1.aux")); err != nil {
		t.Error("placed benchmark not written")
	}
}

// TestRunTimeout exercises the -timeout path: a budget far too small to
// finish global placement must still produce a written, well-formed .pl
// file and a nil error (the CLI exits 0 on graceful cancellation).
func TestRunTimeout(t *testing.T) {
	dir := t.TempDir()
	pl := filepath.Join(dir, "out.pl")
	err := run(context.Background(), runCfg{
		bench: "adaptec1", scale: 0.2, algo: "complx", plOut: pl,
		timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("timed-out run must exit cleanly, got %v", err)
	}
	data, err := os.ReadFile(pl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "UCLA pl 1.0") {
		t.Error("placement file malformed")
	}
}

// TestRunReport exercises the -report and -obs flags together: a completed
// run must write a parseable JSON report plus a CSV convergence trace, and
// the observability listener must come up and serve without disturbing the
// run.
func TestRunReport(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "run")
	err := run(context.Background(), runCfg{
		bench: "adaptec1", scale: 0.05, algo: "complx", maxIter: 20,
		reportBase: base, obsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	jf, err := os.Open(base + ".json")
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	rep, err := obs.ReadReport(jf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Design == "" || rep.Algorithm != "complx" {
		t.Errorf("report metadata incomplete: design=%q algorithm=%q", rep.Design, rep.Algorithm)
	}
	if len(rep.Trace) == 0 {
		t.Error("report has no iteration trace")
	}
	if rep.Result.HPWL <= 0 {
		t.Errorf("report HPWL = %g, want > 0", rep.Result.HPWL)
	}
	if !rep.Result.Legalized {
		t.Error("report does not record legalization")
	}
	// The span tree must include the CLI's parse stage and the flow's
	// global stage.
	names := make(map[string]bool)
	var walk func(ns []*obs.SpanNode)
	walk = func(ns []*obs.SpanNode) {
		for _, n := range ns {
			names[n.Name] = true
			walk(n.Children)
		}
	}
	walk(rep.Spans)
	for _, want := range []string{"parse", "global"} {
		if !names[want] {
			t.Errorf("report span tree is missing %q (have %v)", want, names)
		}
	}
	csvData, err := os.ReadFile(base + ".csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvData)), "\n")
	if want := strings.Join(obs.TraceCSVHeader, ","); lines[0] != want {
		t.Errorf("csv header = %q, want %q", lines[0], want)
	}
	if len(lines) != len(rep.Trace)+1 {
		t.Errorf("csv has %d data rows, trace has %d samples", len(lines)-1, len(rep.Trace))
	}
}

// TestRunObsBadAddr: an unusable -obs address fails fast with a clear error
// instead of placing without observability.
func TestRunObsBadAddr(t *testing.T) {
	err := run(context.Background(), runCfg{
		bench: "adaptec1", scale: 0.05, algo: "complx", maxIter: 4,
		obsAddr: "256.0.0.1:bad",
	})
	if err == nil || !strings.Contains(err.Error(), "obs listener") {
		t.Errorf("want obs listener error, got %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no input", func() error {
			return run(context.Background(), runCfg{scale: 1, algo: "complx"})
		}},
		{"both inputs", func() error {
			return run(context.Background(), runCfg{aux: "x.aux", bench: "adaptec1", scale: 1, algo: "complx"})
		}},
		{"unknown bench", func() error {
			return run(context.Background(), runCfg{bench: "nope", scale: 1, algo: "complx"})
		}},
		{"unknown algo", func() error {
			return run(context.Background(), runCfg{bench: "adaptec1", scale: 0.05, algo: "magic"})
		}},
		{"missing aux", func() error {
			return run(context.Background(), runCfg{aux: "/does/not/exist.aux", scale: 1, algo: "complx"})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.fn() == nil {
				t.Error("expected error")
			}
		})
	}
}
