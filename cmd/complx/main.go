// Command complx places a design with the ComPLx flow (or one of the
// baseline placers) and reports HPWL, scaled HPWL and runtimes.
//
// Input is either an ISPD Bookshelf benchmark (-aux design.aux) or a named
// synthetic ISPD-analog benchmark (-bench adaptec1, optionally scaled with
// -scale). The final placement can be written as a Bookshelf .pl file.
//
// Examples:
//
//	complx -bench adaptec1
//	complx -bench newblue7 -scale 0.25 -algo simpl
//	complx -aux ./ibm01.aux -target 0.8 -pl out.pl -v
//	complx -bench adaptec1 -timeout 30s -pl out.pl
//	complx -bench adaptec1 -checkpoint ./ckpt            # crash-safe snapshots
//	complx -bench adaptec1 -checkpoint ./ckpt -resume    # continue after a crash
//	complx -bench bigblue3 -scale 82 -multilevel         # ~1M cells via the V-cycle
//	complx -bench adaptec1 -portfolio -pf-members 4      # competitive portfolio search
//
// A -timeout budget or an interrupt (Ctrl-C) does not abort the run: the
// flow stops at the best placement found so far, finishes legalization on
// it, writes the requested outputs and exits 0.
//
// With -checkpoint, the global placement state is snapshotted atomically to
// DIR/complx.ckpt every few iterations; -resume continues a killed run from
// the last snapshot, bitwise identical to the uninterrupted run (see
// DESIGN.md §10). Output files (-pl, -json in evalpl) are written with an
// atomic replace, so a crash mid-write never corrupts a previous output.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"complx"
	"complx/internal/fsatomic"
)

func main() {
	var (
		aux       = flag.String("aux", "", "Bookshelf .aux file to place")
		bench     = flag.String("bench", "", "named synthetic benchmark (e.g. adaptec1, newblue7)")
		scale     = flag.Float64("scale", 1.0, "cell-count scale factor for -bench")
		algo      = flag.String("algo", "complx", "placer: complx, simpl, fastplace-cs, nlp")
		precond   = flag.String("precond", "auto", "CG preconditioner: auto, jacobi, ssor, ic0, mg")
		target    = flag.Float64("target", 0, "target density gamma in (0,1]; 0 uses the benchmark default")
		finest    = flag.Bool("finest", false, "use the finest projection grid on all iterations")
		projDP    = flag.Bool("projection-dp", false, "post-process every projection with legalization+DP (Table 1 ablation)")
		useLSE    = flag.Bool("lse", false, "use the log-sum-exp interconnect model")
		skipLegal = flag.Bool("skip-legalize", false, "stop after global placement")
		skipDP    = flag.Bool("skip-detailed", false, "stop after legalization")
		maxIter   = flag.Int("max-iterations", 0, "global placement iteration cap (0 = default)")
		plOut     = flag.String("pl", "", "write the final placement to this .pl file")
		outDir    = flag.String("write-bookshelf", "", "write the full placed benchmark to this directory")
		verbose   = flag.Bool("v", false, "print per-iteration statistics")
		plot      = flag.Bool("plot", false, "print ASCII density/macro/congestion maps of the result")
		clustered = flag.Bool("cluster", false, "two-level placement: cluster, place coarse, expand, refine")
		mlevel    = flag.Bool("multilevel", false, "multilevel V-cycle: coarsen to -ml-target-cells, place coarsest, interpolate+refine each level")
		mlTarget  = flag.Int("ml-target-cells", 0, "movable-cell count the V-cycle coarsens to (0 = default 10000)")
		mlLevels  = flag.Int("ml-max-levels", 0, "max coarsening passes of the V-cycle (0 = default 6)")
		mlRefine  = flag.Int("ml-refine-iters", 0, "iteration budget per V-cycle refinement level (0 = default 8)")
		pf        = flag.Bool("portfolio", false, "competitive portfolio search: -pf-members engine variants race in -pf-rounds rounds, losers reseed from the leader's checkpoint")
		pfMembers = flag.Int("pf-members", 0, "portfolio members K (0 = default 4)")
		pfRounds  = flag.Int("pf-rounds", 0, "portfolio synchronization rounds (0 = default 4)")
		pfCull    = flag.Float64("pf-cull", 0, "fraction of members culled per round, in (0,1) (0 = default 0.25)")
		pfSeed    = flag.Int64("pf-seed", 0, "portfolio perturbation seed (0 = default 1)")
		abacus    = flag.Bool("abacus", false, "use the Abacus legalizer instead of Tetris")
		routab    = flag.Bool("routability", false, "congestion-driven cell inflation (SimPLR-style)")
		threads   = flag.Int("threads", 0, "worker-pool size for the parallel kernels (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget; on expiry the best placement so far is legalized and written (exit 0)")
		obsAddr   = flag.String("obs", "", "serve live observability HTTP on this address (e.g. :6060): /metrics, /status, /report, /debug/pprof/")
		report    = flag.String("report", "", "write a JSON run report to BASE.json and a CSV convergence trace to BASE.csv")
		ckptDir   = flag.String("checkpoint", "", "write crash-safe checkpoints of the global placement state to this directory")
		ckptEvery = flag.Int("checkpoint-interval", 0, "iterations between checkpoints (0 = default 5)")
		resume    = flag.Bool("resume", false, "resume from the checkpoint in -checkpoint if one exists (fresh run otherwise)")
	)
	flag.Parse()
	complx.SetThreads(*threads)
	// Ctrl-C / SIGTERM cancel the run cooperatively: the flow keeps its
	// best placement, finishes legally and writes the outputs. A second
	// interrupt kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, runCfg{
		aux: *aux, bench: *bench, scale: *scale, algo: *algo, target: *target,
		precond: *precond,
		finest:  *finest, projDP: *projDP, useLSE: *useLSE,
		skipLegal: *skipLegal, skipDP: *skipDP, maxIter: *maxIter,
		plOut: *plOut, outDir: *outDir, verbose: *verbose, plot: *plot,
		clustered: *clustered, abacus: *abacus, routability: *routab,
		multilevel: *mlevel, mlTarget: *mlTarget, mlLevels: *mlLevels, mlRefine: *mlRefine,
		portfolio: *pf, pfMembers: *pfMembers, pfRounds: *pfRounds, pfCull: *pfCull, pfSeed: *pfSeed,
		timeout: *timeout, obsAddr: *obsAddr, reportBase: *report,
		ckptDir: *ckptDir, ckptEvery: *ckptEvery, resume: *resume,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "complx:", err)
		os.Exit(1)
	}
}

// runCfg carries the parsed command-line configuration.
type runCfg struct {
	aux, bench, algo, plOut, outDir               string
	precond                                       string
	obsAddr, reportBase, ckptDir                  string
	scale, target                                 float64
	finest, projDP, useLSE, skipLegal, skipDP     bool
	verbose, plot, clustered, abacus, routability bool
	resume, multilevel                            bool
	mlTarget, mlLevels, mlRefine                  int
	portfolio                                     bool
	pfMembers, pfRounds                           int
	pfCull                                        float64
	pfSeed                                        int64
	maxIter, ckptEvery                            int
	timeout                                       time.Duration
}

// loadInput parses (-aux) or generates (-bench) the input design and returns
// the netlist together with the effective target density.
func loadInput(cfg runCfg) (*complx.Netlist, float64, error) {
	target := cfg.target
	switch {
	case cfg.aux != "" && cfg.bench != "":
		return nil, 0, fmt.Errorf("use either -aux or -bench, not both")
	case cfg.aux != "":
		nl, density, err := complx.ReadBookshelf(cfg.aux)
		if err != nil {
			return nil, 0, err
		}
		if target == 0 {
			target = density
		}
		return nl, target, nil
	case cfg.bench != "":
		spec, ok := complx.BenchmarkByName(cfg.bench)
		if !ok {
			return nil, 0, fmt.Errorf("unknown benchmark %q", cfg.bench)
		}
		if cfg.scale != 1.0 {
			spec = complx.ScaleBenchmark(spec, cfg.scale)
		}
		if target == 0 {
			target = spec.TargetDensity
		}
		nl, err := complx.Generate(spec)
		if err != nil {
			return nil, 0, err
		}
		return nl, target, nil
	default:
		return nil, 0, fmt.Errorf("specify -aux or -bench (see -help)")
	}
}

func run(ctx context.Context, cfg runCfg) error {
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	// The observer exists only when an observability output is requested;
	// a nil *complx.Observer disables all instrumentation.
	var observer *complx.Observer
	if cfg.obsAddr != "" || cfg.reportBase != "" {
		observer = complx.NewObserver()
	}
	if cfg.obsAddr != "" {
		ln, err := net.Listen("tcp", cfg.obsAddr)
		if err != nil {
			return fmt.Errorf("obs listener: %w", err)
		}
		srv := &http.Server{Handler: observer.Handler()}
		go srv.Serve(ln) //nolint:errcheck // shut down via Close below
		defer srv.Close()
		fmt.Printf("observability:    http://%s/ (metrics, status, report, pprof)\n", ln.Addr())
	}

	parseSpan := observer.StartSpan("parse")
	nl, target, err := loadInput(cfg)
	parseSpan.End()
	if err != nil {
		return err
	}

	alg, err := complx.ParseAlgorithm(cfg.algo)
	if err != nil {
		return err
	}
	st := nl.Stats()
	fmt.Printf("design %s: %s\n", nl.Name, st)

	opt := complx.Options{
		Algorithm:     alg,
		TargetDensity: target,
		MaxIterations: cfg.maxIter,
		FinestGrid:    cfg.finest,
		ProjectionDP:  cfg.projDP,
		UseLSE:        cfg.useLSE,
		SkipLegalize:  cfg.skipLegal,
		SkipDetailed:  cfg.skipDP,
		Clustered:     cfg.clustered,
		Multilevel: complx.MultilevelOptions{
			Enabled:     cfg.multilevel,
			TargetCells: cfg.mlTarget,
			MaxLevels:   cfg.mlLevels,
			RefineIters: cfg.mlRefine,
		},
		Portfolio: complx.PortfolioOptions{
			Enabled:      cfg.portfolio,
			Members:      cfg.pfMembers,
			Rounds:       cfg.pfRounds,
			CullFraction: cfg.pfCull,
			Seed:         cfg.pfSeed,
		},
		AbacusLegalizer: cfg.abacus,
		Routability:     cfg.routability,
		Precond:         cfg.precond,
		Observer:        observer,
		Checkpoint: complx.CheckpointOptions{
			Dir:      cfg.ckptDir,
			Interval: cfg.ckptEvery,
			Resume:   cfg.resume,
		},
	}
	if cfg.verbose {
		opt.OnIteration = func(it complx.IterStats) {
			fmt.Printf("  iter %3d  lambda=%-9.4f Phi=%-12.0f Pi=%-12.0f gap=%.3f grid=%d\n",
				it.Iter, it.Lambda, it.Phi, it.Pi, (it.PhiUpper-it.Phi)/it.PhiUpper, it.GridNX)
		}
	}
	res, err := complx.PlaceContext(ctx, nl, opt)
	if err != nil {
		if res == nil || !res.Cancelled {
			return err
		}
		// Cancelled (timeout or interrupt): the flow already finished
		// legalization on its best placement — report it and write the
		// outputs as usual.
		fmt.Printf("cancelled:        %v\n", err)
	}

	fmt.Printf("algorithm:        %s\n", alg)
	if res.Resumed {
		fmt.Printf("resumed:          from checkpoint in %s\n", cfg.ckptDir)
	}
	if pf := res.Portfolio; pf != nil {
		fmt.Printf("portfolio:        winner member %d (%s) of %d, %d rounds, %d culled / %d reseeded\n",
			pf.Winner, pf.WinnerVariant, pf.Members, pf.Rounds, pf.Culls, pf.Reseeds)
		if cfg.verbose {
			for i, s := range pf.Scores {
				fmt.Printf("  member %d  score=%.0f\n", i, s)
			}
		}
	}
	if n := len(res.Recovery); n > 0 {
		fmt.Printf("recovery:         %d fallback event(s)\n", n)
		if cfg.verbose {
			for _, e := range res.Recovery {
				fmt.Printf("  %s\n", e)
			}
		}
	}
	fmt.Printf("HPWL:             %.0f\n", res.HPWL)
	fmt.Printf("scaled HPWL:      %.0f  (overflow penalty %.2f%%)\n", res.ScaledHPWL, res.OverflowPercent)
	fmt.Printf("GP iterations:    %d (converged=%v, final lambda=%.4f, gap=%.3f)\n",
		res.GlobalIterations, res.Converged, res.FinalLambda, res.DualityGap)
	if res.Legalized {
		fmt.Printf("legal violations: %d\n", res.LegalViolations)
	}
	fmt.Printf("runtime:          total=%v (global=%v legalize=%v detailed=%v)\n",
		res.Total.Round(1e6), res.GlobalTime.Round(1e6), res.LegalTime.Round(1e6), res.DetailedTime.Round(1e6))
	if cfg.verbose && res.AssemblyTime+res.SolveTime+res.ProjectionTime > 0 {
		fmt.Printf("kernels:          threads=%d assembly=%v cg=%v projection=%v\n",
			complx.Threads(), res.AssemblyTime.Round(1e6), res.SolveTime.Round(1e6),
			res.ProjectionTime.Round(1e6))
		fmt.Printf("preconditioner:   %s (cg iters=%d, setup=%v)\n",
			res.Precond, res.CGIterations, res.PrecondTime.Round(1e6))
	}

	if cfg.plot {
		complx.PrintDensityMap(os.Stdout, nl, 64, 28, target)
		complx.PrintMacroMap(os.Stdout, nl, 64, 28)
		complx.PrintCongestionMap(os.Stdout, nl, 64, 28, 0)
	}
	if plOut := cfg.plOut; plOut != "" {
		// Atomic replace: a crash (or injected fault) mid-write leaves any
		// previous placement file intact instead of a truncated one.
		if err := fsatomic.WriteFile(plOut, 0o644, func(w io.Writer) error {
			return complx.WritePlacement(w, nl)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", plOut)
	}
	if outDir := cfg.outDir; outDir != "" {
		if err := complx.WriteBookshelf(outDir, nl, target); err != nil {
			return err
		}
		fmt.Printf("wrote benchmark to %s\n", outDir)
	}
	if cfg.reportBase != "" {
		jsonPath, csvPath, err := observer.Report().WriteFiles(cfg.reportBase)
		if err != nil {
			return err
		}
		fmt.Printf("wrote report %s and trace %s\n", jsonPath, csvPath)
	}
	return nil
}
