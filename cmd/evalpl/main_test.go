package main

import (
	"path/filepath"
	"testing"

	"complx"
)

func TestEvalPl(t *testing.T) {
	dir := t.TempDir()
	spec, _ := complx.BenchmarkByName("adaptec1")
	nl, err := complx.Generate(complx.ScaleBenchmark(spec, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if err := complx.WriteBookshelf(dir, nl, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join(dir, "adaptec1.aux"), "", 0); err != nil {
		t.Fatal(err)
	}
	// Evaluate an explicit .pl too.
	if err := run(filepath.Join(dir, "adaptec1.aux"), filepath.Join(dir, "adaptec1.pl"), 0.9); err != nil {
		t.Fatal(err)
	}
}

func TestEvalPlErrors(t *testing.T) {
	if err := run("", "", 0); err == nil {
		t.Error("expected error without -aux")
	}
	if err := run("/does/not/exist.aux", "", 0); err == nil {
		t.Error("expected error for missing aux")
	}
}
