package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"complx"
	"complx/internal/obs"
)

func TestEvalPl(t *testing.T) {
	dir := t.TempDir()
	spec, _ := complx.BenchmarkByName("adaptec1")
	nl, err := complx.Generate(complx.ScaleBenchmark(spec, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if err := complx.WriteBookshelf(dir, nl, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := run(filepath.Join(dir, "adaptec1.aux"), "", 0, "", ""); err != nil {
		t.Fatal(err)
	}
	// Evaluate an explicit .pl too.
	if err := run(filepath.Join(dir, "adaptec1.aux"), filepath.Join(dir, "adaptec1.pl"), 0.9, "", ""); err != nil {
		t.Fatal(err)
	}
}

// TestEvalPlCrossCheck is the independent-scoring cross-check: place a
// design with the library flow, write the result as a Bookshelf .pl, then
// re-score the written file through evalpl's loader. The .pl writer uses %g
// (shortest round-trip float formatting), so evalpl's HPWL must equal the
// placer's Result.HPWL to within a few ULPs.
func TestEvalPlCrossCheck(t *testing.T) {
	dir := t.TempDir()
	spec, _ := complx.BenchmarkByName("adaptec1")
	spec = complx.ScaleBenchmark(spec, 0.05)
	nl, err := complx.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Write the unplaced benchmark first so evaluate re-reads the same
	// design the placer saw.
	if err := complx.WriteBookshelf(dir, nl, spec.TargetDensity); err != nil {
		t.Fatal(err)
	}
	res, err := complx.Place(nl, complx.Options{MaxIterations: 25})
	if err != nil {
		t.Fatal(err)
	}
	plPath := filepath.Join(dir, "placed.pl")
	f, err := os.Create(plPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := complx.WritePlacement(f, nl); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := evaluate(filepath.Join(dir, "adaptec1.aux"), plPath, spec.TargetDensity)
	if err != nil {
		t.Fatal(err)
	}
	// ULP-scale agreement: %g round-trips float64 exactly, so the only
	// slack allowed is summation-order noise.
	const rel = 1e-12
	if diff := math.Abs(r.HPWL - res.HPWL); diff > rel*res.HPWL {
		t.Errorf("evalpl HPWL %.17g != placer HPWL %.17g (diff %g)", r.HPWL, res.HPWL, diff)
	}
	if diff := math.Abs(r.WeightedHPWL - res.WHPWL); diff > rel*res.WHPWL {
		t.Errorf("evalpl weighted HPWL %.17g != placer WHPWL %.17g (diff %g)", r.WeightedHPWL, res.WHPWL, diff)
	}
	if diff := math.Abs(r.Scaled - res.ScaledHPWL); diff > rel*res.ScaledHPWL {
		t.Errorf("evalpl scaled HPWL %.17g != placer ScaledHPWL %.17g (diff %g)", r.Scaled, res.ScaledHPWL, diff)
	}
	if len(r.Violations) != res.LegalViolations {
		t.Errorf("evalpl finds %d violations, placer reported %d", len(r.Violations), res.LegalViolations)
	}
}

func TestEvalPlErrors(t *testing.T) {
	if err := run("", "", 0, "", ""); err == nil {
		t.Error("expected error without -aux")
	}
	if err := run("/does/not/exist.aux", "", 0, "", ""); err == nil {
		t.Error("expected error for missing aux")
	}
}

// TestLevelBreakdown pins the V-cycle trace aggregation: grouped by level in
// first-seen (descending) order, kernel seconds summed, last HPWL kept with
// PhiUpper as the fallback, and flat (single-level) traces yielding nil so
// flat score files are unchanged.
func TestLevelBreakdown(t *testing.T) {
	trace := []obs.IterSample{
		{Level: 2, ProjectSeconds: 1, AssemblySeconds: 2, SolveSeconds: 3, PrecondSeconds: 4, PhiUpper: 500},
		{Level: 2, SolveSeconds: 1, HPWL: 900},
		{Level: 1, AssemblySeconds: 2, PhiUpper: 950},
		{Level: 0, SolveSeconds: 3, HPWL: 1000},
	}
	got := levelBreakdown(trace)
	if len(got) != 3 {
		t.Fatalf("levels = %d, want 3", len(got))
	}
	want := []levelScore{
		{Level: 2, Iterations: 2, KernelSeconds: 11, HPWL: 900},
		{Level: 1, Iterations: 1, KernelSeconds: 2, HPWL: 950},
		{Level: 0, Iterations: 1, KernelSeconds: 3, HPWL: 1000},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("level[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if flat := levelBreakdown(trace[3:]); flat != nil {
		t.Errorf("single-level trace produced a breakdown: %+v", flat)
	}
	if empty := levelBreakdown(nil); empty != nil {
		t.Errorf("empty trace produced a breakdown: %+v", empty)
	}
}

// TestEvalPlMultilevelReport drives the full path: a multilevel placement's
// run report handed to -report yields the per-level breakdown.
func TestEvalPlMultilevelReport(t *testing.T) {
	dir := t.TempDir()
	spec, _ := complx.BenchmarkByName("adaptec1")
	spec = complx.ScaleBenchmark(spec, 0.3)
	nl, err := complx.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := complx.WriteBookshelf(dir, nl, spec.TargetDensity); err != nil {
		t.Fatal(err)
	}
	ob := complx.NewObserver()
	if _, err := complx.Place(nl, complx.Options{
		MaxIterations: 12, Observer: ob,
		SkipLegalize: true, SkipDetailed: true,
		Multilevel: complx.MultilevelOptions{Enabled: true, TargetCells: 300, RefineIters: 4},
	}); err != nil {
		t.Fatal(err)
	}
	report := filepath.Join(dir, "report.json")
	f, err := os.Create(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := ob.Report().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := evaluate(filepath.Join(dir, "adaptec1.aux"), "", spec.TargetDensity)
	if err != nil {
		t.Fatal(err)
	}
	if err := applyReport(r, report); err != nil {
		t.Fatal(err)
	}
	if len(r.Levels) < 2 {
		t.Fatalf("multilevel report produced %d levels, want >= 2", len(r.Levels))
	}
	for i, ls := range r.Levels {
		if want := len(r.Levels) - 1 - i; ls.Level != want {
			t.Errorf("levels[%d].Level = %d, want %d (coarsest first)", i, ls.Level, want)
		}
		if ls.Iterations <= 0 || ls.HPWL <= 0 {
			t.Errorf("levels[%d] missing data: %+v", i, ls)
		}
	}
}
