// Command evalpl evaluates a placement file against a Bookshelf benchmark:
// it loads the design, overlays the .pl locations, and reports HPWL,
// MST/Steiner wirelength estimates, the ISPD-2006 scaled HPWL, and legality
// — the contest-style scoring utility.
//
// Example:
//
//	evalpl -aux design.aux -pl placed.pl -target 0.8
//	evalpl -aux design.aux -pl placed.pl -json scores.json
//	evalpl -aux design.aux -pl placed.pl -report run.json -json scores.json
//
// With -report, solver statistics from a complx run report (written by
// `complx -report BASE`) — the resolved CG preconditioner and the total CG
// inner iterations — are folded into the scores, so one JSON file carries
// both the quality and the solver-effort side of a run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"complx"
	"complx/internal/fsatomic"
	"complx/internal/obs"
)

func main() {
	var (
		aux      = flag.String("aux", "", "Bookshelf .aux benchmark")
		pl       = flag.String("pl", "", "placement file to evaluate (defaults to the benchmark's own .pl)")
		target   = flag.Float64("target", 0, "target density gamma; 0 uses the benchmark default")
		jsonPath = flag.String("json", "", "also write the scores as JSON to this file (atomic replace)")
		report   = flag.String("report", "", "complx run report (JSON) whose preconditioner and CG-iteration stats are folded into the scores")
	)
	flag.Parse()
	if err := run(*aux, *pl, *target, *jsonPath, *report); err != nil {
		fmt.Fprintln(os.Stderr, "evalpl:", err)
		os.Exit(1)
	}
}

// evalResult carries the full-precision evaluation of one placement; run
// formats it for humans, tests consume it directly.
type evalResult struct {
	NL           *complx.Netlist
	HPWL         float64
	WeightedHPWL float64
	MST          float64
	Steiner      float64
	Scaled       float64
	Penalty      float64
	Target       float64
	Violations   []string
	// Solver statistics lifted from a run report (-report); zero-valued
	// when no report was given.
	Precond string
	CGIters int
	// Levels is the multilevel V-cycle breakdown reconstructed from the
	// report's iteration trace (DESIGN.md §13); nil for flat runs or when
	// no report was given. Levels[0] is the coarsest.
	Levels []levelScore
}

// levelScore aggregates one V-cycle level from the iteration trace.
type levelScore struct {
	Level      int `json:"level"`
	Iterations int `json:"iterations"`
	// KernelSeconds is the level's kernel wall-clock (projection, assembly,
	// solves, preconditioning) summed over its iterations.
	KernelSeconds float64 `json:"kernel_seconds"`
	// HPWL is the level's final wirelength: the last traced HPWL, falling
	// back to the anchor-placement upper bound when the trace carries no
	// HPWL samples.
	HPWL float64 `json:"hpwl"`
}

// levelBreakdown groups the iteration trace by V-cycle level, coarsest
// first (the order the levels ran). A flat run yields a single level 0
// group, reported as nil so flat score files stay unchanged.
func levelBreakdown(trace []obs.IterSample) []levelScore {
	byLevel := map[int]*levelScore{}
	var order []int
	for _, s := range trace {
		ls := byLevel[s.Level]
		if ls == nil {
			ls = &levelScore{Level: s.Level}
			byLevel[s.Level] = ls
			order = append(order, s.Level)
		}
		ls.Iterations++
		ls.KernelSeconds += s.ProjectSeconds + s.AssemblySeconds + s.SolveSeconds + s.PrecondSeconds
		if s.HPWL != 0 {
			ls.HPWL = s.HPWL
		} else if ls.HPWL == 0 && s.PhiUpper != 0 {
			ls.HPWL = s.PhiUpper
		}
	}
	if len(order) <= 1 {
		return nil
	}
	out := make([]levelScore, 0, len(order))
	for _, lv := range order {
		out = append(out, *byLevel[lv])
	}
	return out
}

// evaluate loads the benchmark, overlays the placement (when given) and
// computes every metric at full float64 precision — the printing in run is
// the only lossy step.
func evaluate(aux, pl string, target float64) (*evalResult, error) {
	if aux == "" {
		return nil, fmt.Errorf("specify -aux (see -help)")
	}
	nl, density, err := complx.ReadBookshelf(aux)
	if err != nil {
		return nil, err
	}
	if target == 0 {
		target = density
	}
	if pl != "" {
		if err := complx.ApplyPlacement(nl, pl); err != nil {
			return nil, err
		}
	}
	scaled, penalty := complx.ScaledHPWL(nl, target)
	return &evalResult{
		NL:           nl,
		HPWL:         complx.HPWL(nl),
		WeightedHPWL: complx.WeightedHPWL(nl),
		MST:          complx.MSTWirelength(nl),
		Steiner:      complx.SteinerWirelength(nl),
		Scaled:       scaled,
		Penalty:      penalty,
		Target:       target,
		Violations:   complx.CheckLegal(nl),
	}, nil
}

// jsonScores is the machine-readable rendering of an evalResult.
type jsonScores struct {
	Design       string  `json:"design"`
	HPWL         float64 `json:"hpwl"`
	WeightedHPWL float64 `json:"weighted_hpwl"`
	MST          float64 `json:"mst"`
	Steiner      float64 `json:"steiner"`
	ScaledHPWL   float64 `json:"scaled_hpwl"`
	Penalty      float64 `json:"overflow_penalty_percent"`
	Target       float64 `json:"target_density"`
	Violations   int     `json:"legal_violations"`
	Precond      string  `json:"precond,omitempty"`
	CGIters      int     `json:"cg_iters,omitempty"`
	// Multilevel V-cycle breakdown (coarsest first); omitted for flat runs.
	LevelCount int          `json:"level_count,omitempty"`
	Levels     []levelScore `json:"levels,omitempty"`
}

// writeJSON atomically replaces path with the JSON scores, so a crash (or an
// injected short write) leaves any previous scores file intact.
func writeJSON(path string, r *evalResult) error {
	return fsatomic.WriteFile(path, 0o644, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonScores{
			Design:       r.NL.Name,
			HPWL:         r.HPWL,
			WeightedHPWL: r.WeightedHPWL,
			MST:          r.MST,
			Steiner:      r.Steiner,
			ScaledHPWL:   r.Scaled,
			Penalty:      r.Penalty,
			Target:       r.Target,
			Violations:   len(r.Violations),
			Precond:      r.Precond,
			CGIters:      r.CGIters,
			LevelCount:   len(r.Levels),
			Levels:       r.Levels,
		})
	})
}

// applyReport folds the solver statistics of a complx run report into r.
// path may be the report JSON itself or the base name given to
// `complx -report BASE` (which writes BASE.json + BASE.csv).
func applyReport(r *evalResult, path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		if f2, err2 := os.Open(path + ".json"); err2 == nil {
			f, err = f2, nil
		}
	}
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := obs.ReadReport(f)
	if err != nil {
		return err
	}
	r.Precond = rep.Result.Precond
	r.CGIters = rep.Result.CGIters
	r.Levels = levelBreakdown(rep.Trace)
	return nil
}

func run(aux, pl string, target float64, jsonPath, report string) error {
	r, err := evaluate(aux, pl, target)
	if err != nil {
		return err
	}
	if report != "" {
		if err := applyReport(r, report); err != nil {
			return err
		}
	}
	fmt.Printf("design:        %s\n", r.NL.Stats())
	fmt.Printf("HPWL:          %.1f\n", r.HPWL)
	fmt.Printf("weighted HPWL: %.1f\n", r.WeightedHPWL)
	fmt.Printf("MST estimate:  %.1f\n", r.MST)
	fmt.Printf("Steiner est.:  %.1f\n", r.Steiner)
	fmt.Printf("scaled HPWL:   %.1f (overflow penalty %.2f%% at target %.2f)\n", r.Scaled, r.Penalty, r.Target)
	if len(r.Violations) == 0 {
		fmt.Println("legality:      OK")
	} else {
		fmt.Printf("legality:      %d violations (first: %s)\n", len(r.Violations), r.Violations[0])
	}
	if r.Precond != "" {
		fmt.Printf("solver:        precond=%s cg_iters=%d\n", r.Precond, r.CGIters)
	}
	if len(r.Levels) > 0 {
		fmt.Printf("multilevel:    %d levels (coarsest first)\n", len(r.Levels))
		for _, ls := range r.Levels {
			fmt.Printf("  level %d:     iters=%d kernel=%.2fs hpwl=%.1f\n",
				ls.Level, ls.Iterations, ls.KernelSeconds, ls.HPWL)
		}
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, r); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
