// Command evalpl evaluates a placement file against a Bookshelf benchmark:
// it loads the design, overlays the .pl locations, and reports HPWL,
// MST/Steiner wirelength estimates, the ISPD-2006 scaled HPWL, and legality
// — the contest-style scoring utility.
//
// Example:
//
//	evalpl -aux design.aux -pl placed.pl -target 0.8
package main

import (
	"flag"
	"fmt"
	"os"

	"complx"
)

func main() {
	var (
		aux    = flag.String("aux", "", "Bookshelf .aux benchmark")
		pl     = flag.String("pl", "", "placement file to evaluate (defaults to the benchmark's own .pl)")
		target = flag.Float64("target", 0, "target density gamma; 0 uses the benchmark default")
	)
	flag.Parse()
	if err := run(*aux, *pl, *target); err != nil {
		fmt.Fprintln(os.Stderr, "evalpl:", err)
		os.Exit(1)
	}
}

// evalResult carries the full-precision evaluation of one placement; run
// formats it for humans, tests consume it directly.
type evalResult struct {
	NL           *complx.Netlist
	HPWL         float64
	WeightedHPWL float64
	MST          float64
	Steiner      float64
	Scaled       float64
	Penalty      float64
	Target       float64
	Violations   []string
}

// evaluate loads the benchmark, overlays the placement (when given) and
// computes every metric at full float64 precision — the printing in run is
// the only lossy step.
func evaluate(aux, pl string, target float64) (*evalResult, error) {
	if aux == "" {
		return nil, fmt.Errorf("specify -aux (see -help)")
	}
	nl, density, err := complx.ReadBookshelf(aux)
	if err != nil {
		return nil, err
	}
	if target == 0 {
		target = density
	}
	if pl != "" {
		if err := complx.ApplyPlacement(nl, pl); err != nil {
			return nil, err
		}
	}
	scaled, penalty := complx.ScaledHPWL(nl, target)
	return &evalResult{
		NL:           nl,
		HPWL:         complx.HPWL(nl),
		WeightedHPWL: complx.WeightedHPWL(nl),
		MST:          complx.MSTWirelength(nl),
		Steiner:      complx.SteinerWirelength(nl),
		Scaled:       scaled,
		Penalty:      penalty,
		Target:       target,
		Violations:   complx.CheckLegal(nl),
	}, nil
}

func run(aux, pl string, target float64) error {
	r, err := evaluate(aux, pl, target)
	if err != nil {
		return err
	}
	fmt.Printf("design:        %s\n", r.NL.Stats())
	fmt.Printf("HPWL:          %.1f\n", r.HPWL)
	fmt.Printf("weighted HPWL: %.1f\n", r.WeightedHPWL)
	fmt.Printf("MST estimate:  %.1f\n", r.MST)
	fmt.Printf("Steiner est.:  %.1f\n", r.Steiner)
	fmt.Printf("scaled HPWL:   %.1f (overflow penalty %.2f%% at target %.2f)\n", r.Scaled, r.Penalty, r.Target)
	if len(r.Violations) == 0 {
		fmt.Println("legality:      OK")
	} else {
		fmt.Printf("legality:      %d violations (first: %s)\n", len(r.Violations), r.Violations[0])
	}
	return nil
}
