// Command evalpl evaluates a placement file against a Bookshelf benchmark:
// it loads the design, overlays the .pl locations, and reports HPWL,
// MST/Steiner wirelength estimates, the ISPD-2006 scaled HPWL, and legality
// — the contest-style scoring utility.
//
// Example:
//
//	evalpl -aux design.aux -pl placed.pl -target 0.8
package main

import (
	"flag"
	"fmt"
	"os"

	"complx"
)

func main() {
	var (
		aux    = flag.String("aux", "", "Bookshelf .aux benchmark")
		pl     = flag.String("pl", "", "placement file to evaluate (defaults to the benchmark's own .pl)")
		target = flag.Float64("target", 0, "target density gamma; 0 uses the benchmark default")
	)
	flag.Parse()
	if err := run(*aux, *pl, *target); err != nil {
		fmt.Fprintln(os.Stderr, "evalpl:", err)
		os.Exit(1)
	}
}

func run(aux, pl string, target float64) error {
	if aux == "" {
		return fmt.Errorf("specify -aux (see -help)")
	}
	nl, density, err := complx.ReadBookshelf(aux)
	if err != nil {
		return err
	}
	if target == 0 {
		target = density
	}
	if pl != "" {
		if err := complx.ApplyPlacement(nl, pl); err != nil {
			return err
		}
	}
	hpwl := complx.HPWL(nl)
	scaled, penalty := complx.ScaledHPWL(nl, target)
	fmt.Printf("design:        %s\n", nl.Stats())
	fmt.Printf("HPWL:          %.1f\n", hpwl)
	fmt.Printf("weighted HPWL: %.1f\n", complx.WeightedHPWL(nl))
	fmt.Printf("MST estimate:  %.1f\n", complx.MSTWirelength(nl))
	fmt.Printf("Steiner est.:  %.1f\n", complx.SteinerWirelength(nl))
	fmt.Printf("scaled HPWL:   %.1f (overflow penalty %.2f%% at target %.2f)\n", scaled, penalty, target)
	v := complx.CheckLegal(nl)
	if len(v) == 0 {
		fmt.Println("legality:      OK")
	} else {
		fmt.Printf("legality:      %d violations (first: %s)\n", len(v), v[0])
	}
	return nil
}
