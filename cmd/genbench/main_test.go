package main

import (
	"os"
	"path/filepath"
	"testing"

	"complx"
)

func TestRunSingleDesign(t *testing.T) {
	dir := t.TempDir()
	err := run("mydesign", 300, 1, 2, 0.2, true, 10, 0.7, 0.9, "", 1, dir)
	if err != nil {
		t.Fatal(err)
	}
	nl, density, err := complx.ReadBookshelf(filepath.Join(dir, "mydesign.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if density != 0.9 {
		t.Errorf("density = %v", density)
	}
	st := nl.Stats()
	if st.Movable != 302 { // 300 std + 2 movable macros
		t.Errorf("movable = %d", st.Movable)
	}
	if st.Macros != 2 {
		t.Errorf("macros = %d", st.Macros)
	}
}

func TestRunSuite(t *testing.T) {
	dir := t.TempDir()
	if err := run("x", 0, 0, 0, 0, false, 0, 0, 0, "2005", 0.03, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"adaptec1", "bigblue4"} {
		aux := filepath.Join(dir, name, name+".aux")
		if _, err := os.Stat(aux); err != nil {
			t.Errorf("%s not written: %v", aux, err)
		}
	}
}

func TestRunUnknownSuite(t *testing.T) {
	if err := run("x", 0, 0, 0, 0, false, 0, 0, 0, "1999", 1, t.TempDir()); err == nil {
		t.Error("expected error")
	}
}
