// Command genbench emits synthetic ISPD-analog benchmarks in Bookshelf
// format: either one custom design from flags, or a whole suite.
//
// Examples:
//
//	genbench -name mydesign -cells 5000 -macros 8 -macro-frac 0.25 -out ./bench
//	genbench -suite 2006 -scale 0.5 -out ./bench
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"complx"
)

func main() {
	var (
		name      = flag.String("name", "synth", "design name")
		cells     = flag.Int("cells", 4000, "number of movable standard cells")
		seed      = flag.Int64("seed", 1, "generator seed")
		macros    = flag.Int("macros", 0, "number of macro blocks")
		macroFrac = flag.Float64("macro-frac", 0.25, "fraction of total area in macros")
		movable   = flag.Bool("movable-macros", false, "make macros movable (ISPD 2006 style)")
		pads      = flag.Int("pads", 0, "number of fixed I/O pads (0 = auto)")
		util      = flag.Float64("util", 0.7, "movable-area utilization of the free core")
		target    = flag.Float64("target", 1.0, "target density gamma recorded in the benchmark")
		suite     = flag.String("suite", "", "emit a whole suite instead: 2005 or 2006")
		scale     = flag.Float64("scale", 1.0, "cell-count scale factor")
		out       = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if err := run(*name, *cells, *seed, *macros, *macroFrac, *movable, *pads,
		*util, *target, *suite, *scale, *out); err != nil {
		fmt.Fprintln(os.Stderr, "genbench:", err)
		os.Exit(1)
	}
}

func run(name string, cells int, seed int64, macros int, macroFrac float64,
	movable bool, pads int, util, target float64, suite string, scale float64, out string) error {
	var specs []complx.BenchSpec
	switch suite {
	case "":
		specs = []complx.BenchSpec{{
			Name: name, NumCells: cells, Seed: seed,
			NumMacros: macros, MacroAreaFrac: macroFrac, MovableMacros: movable,
			NumPads: pads, Utilization: util, TargetDensity: target,
		}}
	case "2005":
		specs = complx.Benchmarks2005()
	case "2006":
		specs = complx.Benchmarks2006()
	default:
		return fmt.Errorf("unknown suite %q (want 2005 or 2006)", suite)
	}
	for _, spec := range specs {
		if scale != 1.0 {
			spec = complx.ScaleBenchmark(spec, scale)
		}
		nl, err := complx.Generate(spec)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		dir := out
		if len(specs) > 1 {
			dir = filepath.Join(out, spec.Name)
		}
		if err := complx.WriteBookshelf(dir, nl, spec.TargetDensity); err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		fmt.Printf("%s: %s -> %s\n", spec.Name, nl.Stats(), filepath.Join(dir, spec.Name+".aux"))
	}
	return nil
}
