package main

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyCfg is an emit configuration small enough for CI: ~100 cells, one
// placer, the bitwise-stable Jacobi path.
func tinyCfg(out string) config {
	return config{
		scale: 0.02, designs: []string{"adaptec1"}, placers: []string{"complx"},
		precond: "jacobi", out: out, maxScale: math.Inf(1), tol: 0.10,
		absSlack: defaultAbsSlackSeconds,
	}
}

// TestWallLimitMaxNotSum pins the slack semantics: the bound is the
// machine-adjusted baseline plus max(relative, absolute) — a long entry is
// judged by the relative tolerance alone, a tiny one by the absolute slack.
func TestWallLimitMaxNotSum(t *testing.T) {
	// Long entry: 100s baseline at 10% tol → 110s, no free half second.
	if got, want := wallLimit(100, 1.0, 0.10, 0.5), 110.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("wallLimit(100s) = %v, want %v", got, want)
	}
	// Tiny entry: 0.1s baseline → absolute slack dominates.
	if got, want := wallLimit(0.1, 1.0, 0.10, 0.5), 0.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("wallLimit(0.1s) = %v, want %v", got, want)
	}
	// The machine factor scales the baseline before the relative slack.
	if got, want := wallLimit(100, 2.0, 0.10, 0.5), 220.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("wallLimit(100s, factor 2) = %v, want %v", got, want)
	}
}

func TestEmitCompareRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "traj.json")
	var sb strings.Builder
	if err := run(&sb, tinyCfg(base)); err != nil {
		t.Fatalf("emit: %v\n%s", err, sb.String())
	}
	tr, err := readTrajectory(base)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema != TrajectorySchema || len(tr.Entries) != 1 {
		t.Fatalf("unexpected trajectory: %+v", tr)
	}
	e := tr.Entries[0]
	if e.HPWL <= 0 || e.CGIters <= 0 || e.WallSeconds <= 0 {
		t.Fatalf("entry missing measurements: %+v", e)
	}
	// Placement is deterministic, so comparing against our own emit must
	// pass: identical HPWL and CG iterations, wall within the noise slack.
	sb.Reset()
	cmp := tinyCfg("")
	cmp.compare = base
	if err := run(&sb, cmp); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "all 1 entries within") {
		t.Errorf("missing success summary in:\n%s", sb.String())
	}
}

func TestCompareDetectsRegressions(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "traj.json")
	if err := run(io.Discard, tinyCfg(base)); err != nil {
		t.Fatal(err)
	}
	tr, err := readTrajectory(base)
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(name string, mutate func(*Entry)) {
		t.Run(name, func(t *testing.T) {
			cp := *tr
			cp.Entries = append([]Entry(nil), tr.Entries...)
			mutate(&cp.Entries[0])
			path := filepath.Join(dir, name+".json")
			if err := writeTrajectory(path, &cp); err != nil {
				t.Fatal(err)
			}
			cmp := tinyCfg("")
			cmp.compare = path
			var sb strings.Builder
			if err := run(&sb, cmp); err == nil {
				t.Errorf("tampered baseline (%s) not detected:\n%s", name, sb.String())
			}
		})
	}
	// A baseline claiming better numbers than the code can produce is
	// exactly what a regression looks like at compare time.
	tamper("hpwl", func(e *Entry) { e.HPWL *= 0.5 })
	tamper("cg_iters", func(e *Entry) { e.CGIters /= 2 })
}

// TestCompareDetectsWallRegression proves the wall-clock gate actually
// fires: with zero absolute slack and zero tolerance, a baseline claiming
// a near-instant run must fail against the real measurement.
func TestCompareDetectsWallRegression(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "traj.json")
	if err := run(io.Discard, tinyCfg(base)); err != nil {
		t.Fatal(err)
	}
	tr, err := readTrajectory(base)
	if err != nil {
		t.Fatal(err)
	}
	tr.Entries[0].WallSeconds = 1e-9
	path := filepath.Join(dir, "wall.json")
	if err := writeTrajectory(path, tr); err != nil {
		t.Fatal(err)
	}
	cmp := tinyCfg("")
	cmp.compare = path
	cmp.tol = 0
	cmp.absSlack = 0
	var sb strings.Builder
	if err := run(&sb, cmp); err == nil {
		t.Errorf("impossible wall baseline not detected:\n%s", sb.String())
	} else if !strings.Contains(sb.String(), "FAIL wall") {
		t.Errorf("failure is not the wall gate:\n%s", sb.String())
	}
}

func TestCompareSkipsAboveMaxScale(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "traj.json")
	if err := run(io.Discard, tinyCfg(base)); err != nil {
		t.Fatal(err)
	}
	cmp := tinyCfg("")
	cmp.compare = base
	cmp.maxScale = 0.01 // below the recorded 0.02 → everything skipped
	var sb strings.Builder
	if err := run(&sb, cmp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SKIP") || !strings.Contains(sb.String(), "all 0 entries") {
		t.Errorf("expected skip-only compare, got:\n%s", sb.String())
	}
}

func TestReadTrajectoryRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"nope/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readTrajectory(path); err == nil {
		t.Error("bad schema accepted")
	}
	if _, err := readTrajectory(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSplit(t *testing.T) {
	got := split(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("split = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("split[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestMultilevelGate pins the relational gate: every recorded flat/V-cycle
// pair at ≥60K cells must show ≥2× speedup at ≤5% HPWL delta, and -ml-gate
// additionally requires such a pair to exist at all.
func TestMultilevelGate(t *testing.T) {
	pair := func(flatWall, mlWall, flatHPWL, mlHPWL float64) *Trajectory {
		return &Trajectory{Entries: []Entry{
			{Placer: "complx", Design: "bigblue3", Scale: 8, Cells: 96000, HPWL: flatHPWL, WallSeconds: flatWall},
			{Placer: multilevelPlacer, Design: "bigblue3", Scale: 8, Cells: 96000, HPWL: mlHPWL, WallSeconds: mlWall},
		}}
	}
	var sb strings.Builder
	if err := checkMultilevelGate(&sb, pair(40, 15, 1e7, 1.02e7), true); err != nil {
		t.Errorf("healthy pair failed the gate: %v\n%s", err, sb.String())
	}
	if err := checkMultilevelGate(io.Discard, pair(40, 25, 1e7, 1.02e7), true); err == nil {
		t.Error("1.6x speedup passed the 2x gate")
	}
	if err := checkMultilevelGate(io.Discard, pair(40, 15, 1e7, 1.06e7), true); err == nil {
		t.Error("+6% HPWL passed the 5% gate")
	}
	// A small pair is outside the gate's scope entirely.
	small := pair(4, 3, 1e6, 1.2e6)
	for i := range small.Entries {
		small.Entries[i].Cells = 5000
	}
	if err := checkMultilevelGate(io.Discard, small, false); err != nil {
		t.Errorf("sub-60K pair was gated: %v", err)
	}
	if err := checkMultilevelGate(io.Discard, small, true); err == nil {
		t.Error("-ml-gate accepted a baseline with no >=60K pair")
	}
}

func TestUpsertEntryReplacesInPlace(t *testing.T) {
	es := []Entry{
		{Placer: "complx", Design: "a", Scale: 1, Precond: "auto", HPWL: 10},
		{Placer: "simpl", Design: "a", Scale: 1, Precond: "auto", HPWL: 20},
	}
	es = upsertEntry(es, Entry{Placer: "complx", Design: "a", Scale: 1, Precond: "auto", HPWL: 11})
	if len(es) != 2 || es[0].HPWL != 11 {
		t.Errorf("replacement appended instead: %+v", es)
	}
	es = upsertEntry(es, Entry{Placer: "complx", Design: "a", Scale: 2, Precond: "auto"})
	if len(es) != 3 {
		t.Errorf("new scale should append: %+v", es)
	}
}
