// Command benchtrend records and enforces the repo's committed performance
// trajectory. In emit mode it places a fixed suite of synthetic ISPD-analog
// designs with each placer, measures wall-clock time, final HPWL and total
// CG inner iterations, and writes the result as a baseline JSON
// (BENCH_trajectory.json at the repo root is the committed one). In compare
// mode it re-runs exactly the entries recorded in a baseline and fails —
// with a non-zero exit — when any entry regresses:
//
//   - HPWL: placements are deterministic, so any increase over the baseline
//     is a real quality regression and fails immediately.
//   - CG iterations: also deterministic; any increase fails.
//   - Wall-clock: compared after normalizing by a machine factor (the ratio
//     of a fixed CPU-bound calibration solve's runtime now vs. at baseline
//     time), with a relative tolerance (default 10%) plus a small absolute
//     slack that absorbs scheduler noise on sub-second entries.
//
// Examples:
//
//	benchtrend -scale 0.25 -out BENCH_trajectory.json
//	benchtrend -compare BENCH_trajectory.json -max-scale 0.06   # CI job
//
// Entries whose recorded scale exceeds -max-scale are skipped in compare
// mode, so the committed baseline can carry both CI-sized and full-sized
// entries while CI replays only the cheap ones.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"complx"
	"complx/internal/fsatomic"
	"complx/internal/sparse"
)

// TrajectorySchema identifies the baseline JSON format.
const TrajectorySchema = "complx-bench-trajectory/1"

// Entry is one measured (placer, design, scale, precond) combination.
type Entry struct {
	Placer      string  `json:"placer"`
	Design      string  `json:"design"`
	Scale       float64 `json:"scale"`
	Precond     string  `json:"precond"`
	Cells       int     `json:"cells"`
	HPWL        float64 `json:"hpwl"`
	CGIters     int     `json:"cg_iters"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Trajectory is the baseline file: the calibration runtime that anchors
// wall-clock comparisons across machines, plus the measured entries.
type Trajectory struct {
	Schema             string  `json:"schema"`
	Go                 string  `json:"go"`
	CalibrationSeconds float64 `json:"calibration_seconds"`
	Entries            []Entry `json:"entries"`
}

func main() {
	var (
		scale    = flag.Float64("scale", 0.05, "benchmark scale factor for emit mode")
		designs  = flag.String("designs", "adaptec1,newblue1", "comma-separated synthetic designs to place (emit mode)")
		placers  = flag.String("placers", "complx,simpl,fastplace-cs", "comma-separated placers to measure (emit mode)")
		precond  = flag.String("precond", "auto", "CG preconditioner for the quadratic placers (emit mode)")
		out      = flag.String("out", "", "write the measured trajectory to this JSON file (emit mode)")
		appendTo = flag.Bool("append", false, "merge into an existing -out baseline instead of replacing it (same machine assumed; entries with the same placer/design/scale/precond are replaced)")
		compare  = flag.String("compare", "", "baseline trajectory JSON to re-run and compare against")
		maxScale = flag.Float64("max-scale", math.Inf(1), "in compare mode, skip baseline entries with a larger recorded scale")
		tol      = flag.Float64("tol", 0.10, "relative wall-clock tolerance in compare mode")
		absSlack = flag.Float64("abs-slack", defaultAbsSlackSeconds, "absolute wall-clock slack in seconds; the effective slack is max(abs, relative)")
		mlGate   = flag.Bool("ml-gate", false, "in compare mode, require the baseline to record a flat/multilevel pair at ≥60K cells (the relation itself is always checked on recorded pairs)")
		pfGate   = flag.Bool("pf-gate", false, "in compare mode, require the baseline to record a flat/portfolio pair at ≥9K cells (the relation itself is always checked on recorded pairs)")
	)
	flag.Parse()
	if err := run(os.Stdout, config{
		scale: *scale, designs: split(*designs), placers: split(*placers),
		precond: *precond, out: *out, appendTo: *appendTo, compare: *compare,
		maxScale: *maxScale, tol: *tol, absSlack: *absSlack, mlGate: *mlGate,
		pfGate: *pfGate,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
}

type config struct {
	scale            float64
	designs, placers []string
	precond          string
	out, compare     string
	appendTo         bool
	maxScale, tol    float64
	absSlack         float64
	mlGate           bool
	pfGate           bool
}

func split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// calibrate measures a fixed CPU-bound PCG solve (a 240×240 grid Laplacian
// to a tight tolerance). The workload exercises the same kernels the
// placers spend their time in, so the ratio of its runtime on two machines
// is a usable wall-clock exchange rate between them.
func calibrate() (float64, error) {
	const nx = 240
	n := nx * nx
	b := sparse.NewBuilder(n)
	for i := 0; i < nx; i++ {
		for j := 0; j < nx; j++ {
			k := i*nx + j
			b.AddDiag(k, 4.01)
			if i > 0 {
				b.Add(k, k-nx, -1)
			}
			if i < nx-1 {
				b.Add(k, k+nx, -1)
			}
			if j > 0 {
				b.Add(k, k-1, -1)
			}
			if j < nx-1 {
				b.Add(k, k+1, -1)
			}
		}
	}
	a := b.Build()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%17) - 8
	}
	x := make([]float64, n)
	start := time.Now()
	_, err := sparse.SolvePCG(a, x, rhs, sparse.CGOptions{Tol: 1e-10, MaxIter: 2000})
	return time.Since(start).Seconds(), err
}

// measure places one (placer, design, scale, precond) combination and
// returns its entry. The observer supplies the CG iteration total for the
// placers whose results do not carry it (instrumentation is read-only, so
// observed runs place bitwise identically).
func measure(placer, design string, scale float64, precond string) (Entry, error) {
	spec, ok := complx.BenchmarkByName(design)
	if !ok {
		return Entry{}, fmt.Errorf("unknown design %q", design)
	}
	if scale != 1.0 {
		spec = complx.ScaleBenchmark(spec, scale)
	}
	nl, err := complx.Generate(spec)
	if err != nil {
		return Entry{}, err
	}
	name := placer
	multilevel, portfolio := false, false
	switch name {
	case multilevelPlacer:
		// The multilevel trajectory entry: the ComPLx engine through the
		// V-cycle with the committed knobs, so flat ("complx") and V-cycle
		// entries on the same design are directly comparable.
		name, multilevel = "complx", true
	case portfolioPlacer:
		// The portfolio trajectory entry: the ComPLx engine through the
		// competitive portfolio search with the committed knobs; member 0
		// runs the unperturbed flat configuration, so the winner's HPWL is
		// directly comparable to (and never worse than) the flat entry.
		name, portfolio = "complx", true
	}
	alg, err := complx.ParseAlgorithm(name)
	if err != nil {
		return Entry{}, err
	}
	opt := complx.Options{
		Algorithm:     alg,
		TargetDensity: spec.TargetDensity,
		Precond:       precond,
		// Global placement only: legalization and detailed placement do not
		// touch the CG solver, and skipping them keeps compare-mode entries
		// cheap and focused on the solver trajectory this tool gates.
		SkipLegalize: true,
		SkipDetailed: true,
	}
	if multilevel {
		opt.Multilevel = complx.MultilevelOptions{
			Enabled:     true,
			TargetCells: multilevelTargetCells,
			RefineIters: multilevelRefineIters,
		}
	}
	if portfolio {
		opt.Portfolio = complx.PortfolioOptions{
			Enabled:      true,
			Members:      portfolioMembers,
			Rounds:       portfolioRounds,
			CullFraction: portfolioCullFraction,
			Seed:         portfolioSeed,
		}
	}
	start := time.Now()
	res, err := complx.Place(nl, opt)
	wall := time.Since(start).Seconds()
	if err != nil {
		return Entry{}, fmt.Errorf("%s/%s: %w", placer, design, err)
	}
	e := Entry{
		Placer: placer, Design: design, Scale: scale,
		Precond: precond, Cells: nl.NumCells(),
		HPWL: res.HPWL, CGIters: res.CGIterations, WallSeconds: wall,
	}
	if e.CGIters == 0 {
		// Overflow-loop baselines do not expose CG totals through Result;
		// re-run observed and read the metric. The rerun replaces the wall
		// measurement too, so both numbers describe the same run.
		nl2, err := complx.Generate(spec)
		if err != nil {
			return Entry{}, err
		}
		obsOpt := opt
		obsOpt.Observer = complx.NewObserver()
		start := time.Now()
		if _, err := complx.Place(nl2, obsOpt); err != nil {
			return Entry{}, fmt.Errorf("%s/%s (observed): %w", placer, design, err)
		}
		e.WallSeconds = time.Since(start).Seconds()
		e.CGIters = int(obsOpt.Observer.Metrics().Snapshot()["complx_cg_iterations_total"])
	}
	return e, nil
}

func run(w io.Writer, cfg config) error {
	if cfg.compare != "" {
		return runCompare(w, cfg)
	}
	calib, err := calibrate()
	if err != nil {
		return fmt.Errorf("calibration solve: %w", err)
	}
	tr := &Trajectory{Schema: TrajectorySchema, Go: runtime.Version(), CalibrationSeconds: calib}
	if cfg.appendTo {
		// Incremental baseline growth: keep the existing entries and the
		// calibration they were normalized against. Valid only on the machine
		// that emitted the baseline — new entries are recorded raw, so a
		// different machine would mix incompatible wall-clock scales.
		old, err := readTrajectory(cfg.out)
		if err != nil {
			return fmt.Errorf("-append: %w", err)
		}
		tr.CalibrationSeconds = old.CalibrationSeconds
		tr.Entries = old.Entries
	}
	for _, d := range cfg.designs {
		for _, p := range cfg.placers {
			e, err := measure(p, d, cfg.scale, cfg.precond)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-14s %-10s scale=%.3g cells=%-7d hpwl=%.0f cg_iters=%-6d wall=%.2fs\n",
				e.Placer, e.Design, e.Scale, e.Cells, e.HPWL, e.CGIters, e.WallSeconds)
			tr.Entries = upsertEntry(tr.Entries, e)
		}
	}
	if cfg.out != "" {
		if err := writeTrajectory(cfg.out, tr); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (calibration %.3fs)\n", cfg.out, calib)
	}
	return nil
}

// The multilevel trajectory entry and its committed V-cycle knobs. The
// knobs are pinned here (not left to library defaults) so regenerating the
// baseline measures the same configuration the committed entries recorded.
const (
	multilevelPlacer      = "complx-ml"
	multilevelTargetCells = 24000
	multilevelRefineIters = 8
)

// Relational multilevel gate (ISSUE: V-cycle ≥2× faster than flat at ≤5%
// HPWL delta on ≥60K-cell analogs). Checked against the recorded baseline
// entries in compare mode, so CI enforces the committed relation even when
// -max-scale keeps the big entries out of the replay.
const (
	mlGateMinCells  = 60000
	mlGateSpeedup   = 2.0
	mlGateHPWLRatio = 1.05
)

// checkMultilevelGate verifies the recorded flat/multilevel entry pairs: on
// every design with both a "complx" and a "complx-ml" entry at the same
// scale and ≥60K cells, the V-cycle must be ≥2× faster at ≤5% HPWL delta,
// and at least one such pair must exist in the baseline.
func checkMultilevelGate(w io.Writer, base *Trajectory, requirePair bool) error {
	type key struct {
		design string
		scale  float64
	}
	flat := map[key]Entry{}
	for _, e := range base.Entries {
		if e.Placer == "complx" {
			flat[key{e.Design, e.Scale}] = e
		}
	}
	pairs, failures := 0, 0
	for _, ml := range base.Entries {
		if ml.Placer != multilevelPlacer {
			continue
		}
		fe, ok := flat[key{ml.Design, ml.Scale}]
		if !ok || fe.Cells < mlGateMinCells {
			continue
		}
		pairs++
		speedup := fe.WallSeconds / ml.WallSeconds
		delta := ml.HPWL/fe.HPWL - 1
		status := "ok"
		if speedup < mlGateSpeedup {
			status = fmt.Sprintf("FAIL speedup %.2fx < %.1fx", speedup, mlGateSpeedup)
			failures++
		} else if ml.HPWL > fe.HPWL*mlGateHPWLRatio {
			status = fmt.Sprintf("FAIL hpwl delta %+.2f%% > %+.0f%%", delta*100, (mlGateHPWLRatio-1)*100)
			failures++
		}
		fmt.Fprintf(w, "ml-gate %-10s scale=%.3g cells=%-7d speedup=%.2fx hpwl-delta=%+.2f%%  %s\n",
			ml.Design, ml.Scale, fe.Cells, speedup, delta*100, status)
	}
	if pairs == 0 && requirePair {
		return fmt.Errorf("baseline records no flat/multilevel pair at ≥%d cells; regenerate it with a %s entry", mlGateMinCells, multilevelPlacer)
	}
	if failures > 0 {
		return fmt.Errorf("%d multilevel gate pair(s) outside the committed relation", failures)
	}
	return nil
}

// The portfolio trajectory entry and its committed search knobs, pinned for
// the same reason as the multilevel ones: regenerating the baseline measures
// the configuration the committed entries recorded.
const (
	portfolioPlacer       = "complx-pf"
	portfolioMembers      = 4
	portfolioRounds       = 4
	portfolioCullFraction = 0.25
	portfolioSeed         = 1
)

// Relational portfolio gate (ISSUE: on a recorded ≥9K-cell pair, the
// portfolio winner's HPWL must not exceed the flat run's). Member 0 runs the
// unperturbed flat configuration and is never culled, so the relation holds
// by construction; the gate pins that elitism invariant against regression.
const (
	pfGateMinCells = 9000
	// Quality metrics are deterministic; the epsilon only absorbs float
	// formatting round-trip, matching the HPWL check in runCompare.
	pfGateHPWLEps = 1e-9
)

// checkPortfolioGate verifies the recorded flat/portfolio entry pairs: on
// every design with both a "complx" and a "complx-pf" entry at the same
// scale and ≥9K cells, the portfolio HPWL must be ≤ the flat HPWL, and at
// least one such pair must exist in the baseline when requirePair is set.
func checkPortfolioGate(w io.Writer, base *Trajectory, requirePair bool) error {
	type key struct {
		design string
		scale  float64
	}
	flat := map[key]Entry{}
	for _, e := range base.Entries {
		if e.Placer == "complx" {
			flat[key{e.Design, e.Scale}] = e
		}
	}
	pairs, failures := 0, 0
	for _, pf := range base.Entries {
		if pf.Placer != portfolioPlacer {
			continue
		}
		fe, ok := flat[key{pf.Design, pf.Scale}]
		if !ok || fe.Cells < pfGateMinCells {
			continue
		}
		pairs++
		delta := pf.HPWL/fe.HPWL - 1
		status := "ok"
		if pf.HPWL > fe.HPWL*(1+pfGateHPWLEps) {
			status = fmt.Sprintf("FAIL hpwl %.0f > flat %.0f", pf.HPWL, fe.HPWL)
			failures++
		}
		fmt.Fprintf(w, "pf-gate %-10s scale=%.3g cells=%-7d hpwl-delta=%+.3f%%  %s\n",
			pf.Design, pf.Scale, fe.Cells, delta*100, status)
	}
	if pairs == 0 && requirePair {
		return fmt.Errorf("baseline records no flat/portfolio pair at ≥%d cells; regenerate it with a %s entry", pfGateMinCells, portfolioPlacer)
	}
	if failures > 0 {
		return fmt.Errorf("%d portfolio gate pair(s) outside the committed relation", failures)
	}
	return nil
}

// defaultAbsSlackSeconds absorbs scheduler noise on sub-second entries: a
// tiny run can miss a 10% relative bound on timer jitter alone. The slack
// is max(absolute, relative), not their sum — long entries are judged by
// the relative tolerance alone instead of pocketing a free half second on
// top of it.
const defaultAbsSlackSeconds = 0.5

// wallLimit is the pass/fail wall-clock bound for one baseline entry: the
// machine-adjusted baseline plus max(relative tolerance, absolute slack).
func wallLimit(baseSeconds, factor, tol, absSlack float64) float64 {
	adjusted := baseSeconds * factor
	return adjusted + math.Max(adjusted*tol, absSlack)
}

func runCompare(w io.Writer, cfg config) error {
	base, err := readTrajectory(cfg.compare)
	if err != nil {
		return err
	}
	calib, err := calibrate()
	if err != nil {
		return fmt.Errorf("calibration solve: %w", err)
	}
	factor := 1.0
	if base.CalibrationSeconds > 0 {
		factor = calib / base.CalibrationSeconds
		// A wildly different factor means the calibration itself misbehaved
		// (thermal throttling, a debugger attached); clamp so the wall-clock
		// gate cannot be silently disabled by a huge factor.
		factor = math.Min(math.Max(factor, 0.2), 5)
	}
	fmt.Fprintf(w, "machine factor %.2f (calibration %.3fs now vs %.3fs at baseline)\n",
		factor, calib, base.CalibrationSeconds)
	if err := checkMultilevelGate(w, base, cfg.mlGate); err != nil {
		return err
	}
	if err := checkPortfolioGate(w, base, cfg.pfGate); err != nil {
		return err
	}

	failures := 0
	ran := 0
	for _, be := range base.Entries {
		if be.Scale > cfg.maxScale {
			fmt.Fprintf(w, "SKIP %-14s %-10s scale=%.3g (above -max-scale %.3g)\n",
				be.Placer, be.Design, be.Scale, cfg.maxScale)
			continue
		}
		ran++
		e, err := measure(be.Placer, be.Design, be.Scale, be.Precond)
		if err != nil {
			return err
		}
		status := "ok"
		// Placements are deterministic, so quality metrics compare exactly
		// (modulo float formatting round-trip, hence the relative epsilon).
		if e.HPWL > be.HPWL*(1+1e-9) {
			status = fmt.Sprintf("FAIL hpwl %.0f > baseline %.0f", e.HPWL, be.HPWL)
			failures++
		} else if e.CGIters > be.CGIters {
			status = fmt.Sprintf("FAIL cg_iters %d > baseline %d", e.CGIters, be.CGIters)
			failures++
		} else if limit := wallLimit(be.WallSeconds, factor, cfg.tol, cfg.absSlack); e.WallSeconds > limit {
			status = fmt.Sprintf("FAIL wall %.2fs > limit %.2fs (baseline %.2fs × factor %.2f + tol)",
				e.WallSeconds, limit, be.WallSeconds, factor)
			failures++
		} else if e.HPWL < be.HPWL*(1-1e-9) || e.CGIters < be.CGIters {
			status = "ok (improved; consider regenerating the baseline)"
		}
		fmt.Fprintf(w, "%-14s %-10s scale=%.3g hpwl=%.0f cg_iters=%-6d wall=%.2fs  %s\n",
			e.Placer, e.Design, e.Scale, e.HPWL, e.CGIters, e.WallSeconds, status)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d entries regressed", failures, ran)
	}
	fmt.Fprintf(w, "all %d entries within the committed trajectory\n", ran)
	return nil
}

// upsertEntry appends e, replacing an existing entry for the same
// (placer, design, scale, precond) so -append re-measures in place.
func upsertEntry(entries []Entry, e Entry) []Entry {
	for i, old := range entries {
		if old.Placer == e.Placer && old.Design == e.Design && old.Scale == e.Scale && old.Precond == e.Precond {
			entries[i] = e
			return entries
		}
	}
	return append(entries, e)
}

func writeTrajectory(path string, tr *Trajectory) error {
	return fsatomic.WriteFile(path, 0o644, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tr)
	})
}

func readTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr Trajectory
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if tr.Schema != TrajectorySchema {
		return nil, fmt.Errorf("%s: unknown schema %q (want %q)", path, tr.Schema, TrajectorySchema)
	}
	return &tr, nil
}
